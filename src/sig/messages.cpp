#include "sig/messages.hpp"

#include <cstring>

namespace hni::sig {
namespace {

constexpr std::uint16_t kMagic = 0x5147;  // "QG" — signalling frame guard
constexpr std::size_t kWireSize = 2 +     // magic
                                  1 +     // type
                                  4 +     // call_id
                                  2 + 2 + // calling, called
                                  1 +     // aal
                                  8 +     // pcr (micro-cells/s as u64)
                                  2 + 2 + // assigned vpi, vci
                                  1;      // cause

void put_u16(aal::Bytes& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(aal::Bytes& b, std::uint32_t v) {
  put_u16(b, static_cast<std::uint16_t>(v));
  put_u16(b, static_cast<std::uint16_t>(v >> 16));
}
void put_u64(aal::Bytes& b, std::uint64_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
  put_u32(b, static_cast<std::uint32_t>(v >> 32));
}
std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(get_u16(p)) |
         (static_cast<std::uint32_t>(get_u16(p + 2)) << 16);
}
std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

aal::Bytes Message::encode() const {
  aal::Bytes b;
  b.reserve(kWireSize);
  put_u16(b, kMagic);
  b.push_back(static_cast<std::uint8_t>(type));
  put_u32(b, call_id);
  put_u16(b, calling_party);
  put_u16(b, called_party);
  b.push_back(static_cast<std::uint8_t>(aal));
  // PCR carried as micro-cells/second so a double survives the wire.
  put_u64(b, static_cast<std::uint64_t>(pcr_cells_per_second * 1e6));
  put_u16(b, assigned_vc.vpi);
  put_u16(b, assigned_vc.vci);
  b.push_back(static_cast<std::uint8_t>(cause));
  return b;
}

std::optional<Message> Message::decode(const aal::Bytes& bytes) {
  if (bytes.size() != kWireSize) return std::nullopt;
  const std::uint8_t* p = bytes.data();
  if (get_u16(p) != kMagic) return std::nullopt;
  p += 2;
  Message m;
  const std::uint8_t type = *p++;
  if (type < 1 || type > 4) return std::nullopt;
  m.type = static_cast<MessageType>(type);
  m.call_id = get_u32(p);
  p += 4;
  m.calling_party = get_u16(p);
  p += 2;
  m.called_party = get_u16(p);
  p += 2;
  const std::uint8_t aal = *p++;
  if (aal > 2) return std::nullopt;
  m.aal = static_cast<aal::AalType>(aal);
  m.pcr_cells_per_second = static_cast<double>(get_u64(p)) / 1e6;
  p += 8;
  m.assigned_vc.vpi = get_u16(p);
  p += 2;
  m.assigned_vc.vci = get_u16(p);
  p += 2;
  m.cause = static_cast<Cause>(*p);
  return m;
}

std::string_view to_string(MessageType type) {
  switch (type) {
    case MessageType::kSetup:
      return "SETUP";
    case MessageType::kConnect:
      return "CONNECT";
    case MessageType::kRelease:
      return "RELEASE";
    case MessageType::kReleaseComplete:
      return "RELEASE-COMPLETE";
  }
  return "?";
}

std::string_view to_string(Cause cause) {
  switch (cause) {
    case Cause::kNormal:
      return "normal clearing";
    case Cause::kUserBusy:
      return "user busy";
    case Cause::kNoRouteToDestination:
      return "no route to destination";
    case Cause::kCallRejected:
      return "call rejected";
    case Cause::kNetworkOutOfVcs:
      return "no VC available";
  }
  return "?";
}

}  // namespace hni::sig
