// The scenario fleet runner: builds a live testbed from a declarative
// core::ScenarioSpec, runs it, and measures everything the acceptance
// block gates on.
//
// One function replaces the copy-pasted setup blocks of the bench
// suite:
//
//   * p2p       two stations over a duplex link (optionally lossy or
//               flapping); per-flow VCs opened directly.
//   * mux       N source stations into one switch, one sink station —
//               the overload/fairness plant. Calls are *signalled*
//               (SETUP/CONNECT through the agent), so contracts,
//               weights, meters and CAC ride the real control plane.
//   * line      N switches in a row, sources on the first, sink on the
//               last; trunks between neighbours carry the loss/flap
//               fault profile.
//   * triangle  the protection plant: sources on switch 0, sink on
//               switch 1, a standby path through switch 2; the first
//               trunk (0<->1) takes the flap schedule.
//
// Acceptance is evaluated in-process (core::evaluate_acceptance); a
// digest over the full trace stream + telemetry snapshot is computed
// when the spec asks for golden or determinism checking.

#pragma once

#include <string>
#include <vector>

#include "core/scenario_spec.hpp"

namespace hni::sig {

/// Runs `spec` (twice when accept.determinism is set), fills the
/// result, and evaluates acceptance into result.failures.
core::ScenarioResult run_scenario(const core::ScenarioSpec& spec,
                                  bool smoke = false);

/// The built-in run matrix: every plane the repo's bench series
/// regresses, one declarative row each. Stable order.
const std::vector<core::ScenarioSpec>& builtin_scenarios();

/// Looks `name` up in the built-in registry, then (when `scenario_dir`
/// is non-empty) as `<scenario_dir>/<name>.scn`. Returns false with an
/// error when neither resolves.
bool find_scenario(const std::string& name, const std::string& scenario_dir,
                   core::ScenarioSpec& out, std::string& error);

}  // namespace hni::sig
