#include "sig/network.hpp"

#include <stdexcept>

namespace hni::sig {

SignalingNetwork::SignalingNetwork(core::Testbed& bed, net::Switch& sw,
                                   std::size_t agent_port,
                                   SignalingConfig config)
    : bed_(bed), sw_(sw), agent_port_(agent_port), config_(config) {
  core::StationConfig sc;
  sc.name = "call-agent";
  // The agent is a beefy dedicated server: give it headroom so call
  // processing is dominated by protocol transport, not agent CPU.
  sc.host.cpu.clock_hz = 100e6;
  sc.host.cpu.cpi = 1.0;
  agent_ = &bed_.add_station(sc);
  bed_.connect_to_switch(*agent_, sw_, agent_port_);
  bed_.connect_from_switch(sw_, agent_port_, *agent_);
}

CallControl& SignalingNetwork::attach(core::Station& station,
                                      std::size_t port,
                                      std::uint16_t party) {
  if (port == agent_port_) {
    throw std::invalid_argument("SignalingNetwork: port taken by agent");
  }
  bed_.connect_to_switch(station, sw_, port);
  bed_.connect_from_switch(sw_, port, station);

  // Permanent signalling paths: endpoint <-> agent.
  sw_.add_route(port, kSignalingVc, agent_port_, agent_rx_vc(port));
  sw_.add_route(agent_port_, agent_tx_vc(port), port, kSignalingVc);
  agent_->nic().open_vc(agent_rx_vc(port), aal::AalType::kAal5);
  agent_->host().set_vc_handler(
      agent_rx_vc(port),
      [this, port](aal::Bytes sdu, const host::RxInfo&) {
        on_frame(port, std::move(sdu));
      });

  endpoints_.push_back(Endpoint{port, party});
  next_vci_[port] = config_.first_data_vci;
  controls_.push_back(std::make_unique<CallControl>(station, party));
  return *controls_.back();
}

const SignalingNetwork::Endpoint* SignalingNetwork::endpoint_by_party(
    std::uint16_t party) const {
  for (const auto& e : endpoints_) {
    if (e.party == party) return &e;
  }
  return nullptr;
}

std::optional<std::uint16_t> SignalingNetwork::allocate_vci(
    std::size_t port) {
  auto& free = free_vcis_[port];
  if (!free.empty()) {
    const std::uint16_t vci = free.back();
    free.pop_back();
    return vci;
  }
  auto& next = next_vci_[port];
  if (next >= config_.first_data_vci + config_.max_vcs_per_port) {
    return std::nullopt;
  }
  return next++;
}

void SignalingNetwork::free_vci(std::size_t port, std::uint16_t vci) {
  free_vcis_[port].push_back(vci);
}

void SignalingNetwork::send_to_port(std::size_t port, const Message& m) {
  agent_->host().send(agent_tx_vc(port), aal::AalType::kAal5, m.encode());
}

void SignalingNetwork::refuse(std::size_t port, const Message& setup,
                              Cause cause) {
  ++calls_refused_;
  Message m;
  m.type = MessageType::kRelease;
  m.call_id = setup.call_id;
  m.cause = cause;
  send_to_port(port, m);
}

void SignalingNetwork::on_frame(std::size_t from_port, aal::Bytes sdu) {
  const auto m = Message::decode(sdu);
  if (!m) return;
  switch (m->type) {
    case MessageType::kSetup:
      handle_setup(from_port, *m);
      break;
    case MessageType::kConnect:
      handle_connect(*m);
      break;
    case MessageType::kRelease:
      handle_release(from_port, *m);
      break;
    case MessageType::kReleaseComplete:
      handle_release_complete(*m);
      break;
  }
}

void SignalingNetwork::handle_setup(std::size_t from_port,
                                    const Message& m) {
  const Endpoint* callee = endpoint_by_party(m.called_party);
  if (callee == nullptr) {
    refuse(from_port, m, Cause::kNoRouteToDestination);
    return;
  }
  if (calls_.count(m.call_id) != 0) {
    refuse(from_port, m, Cause::kCallRejected);  // duplicate reference
    return;
  }
  const auto caller_vci = allocate_vci(from_port);
  const auto callee_vci = allocate_vci(callee->port);
  if (!caller_vci || !callee_vci) {
    if (caller_vci) free_vci(from_port, *caller_vci);
    if (callee_vci) free_vci(callee->port, *callee_vci);
    refuse(from_port, m, Cause::kNetworkOutOfVcs);
    return;
  }

  CallState call;
  call.caller_port = from_port;
  call.callee_port = callee->port;
  call.caller_party = m.calling_party;
  call.callee_party = m.called_party;
  call.caller_vc = {0, *caller_vci};
  call.callee_vc = {0, *callee_vci};
  call.pcr = m.pcr_cells_per_second;
  calls_.emplace(m.call_id, call);

  Message fwd = m;
  fwd.assigned_vc = call.callee_vc;
  send_to_port(callee->port, fwd);
}

void SignalingNetwork::program_routes(const CallState& call) {
  sw_.add_route(call.caller_port, call.caller_vc, call.callee_port,
                call.callee_vc);
  sw_.add_route(call.callee_port, call.callee_vc, call.caller_port,
                call.caller_vc);
  if (call.pcr > 0.0) {
    const sim::Time cdvt = static_cast<sim::Time>(
        config_.police_cdvt_slots *
        static_cast<double>(sw_.config().port_rate.cell_slot()));
    sw_.add_policer(call.caller_port, call.caller_vc, call.pcr, cdvt,
                    net::Switch::PoliceAction::kDrop);
    sw_.add_policer(call.callee_port, call.callee_vc, call.pcr, cdvt,
                    net::Switch::PoliceAction::kDrop);
  }
}

void SignalingNetwork::remove_routes(const CallState& call) {
  sw_.remove_route(call.caller_port, call.caller_vc);
  sw_.remove_route(call.callee_port, call.callee_vc);
}

void SignalingNetwork::handle_connect(const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) return;
  CallState& call = it->second;
  program_routes(call);
  call.routed = true;
  ++calls_routed_;

  Message fwd = m;
  fwd.assigned_vc = call.caller_vc;
  send_to_port(call.caller_port, fwd);
}

void SignalingNetwork::handle_release(std::size_t from_port,
                                      const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) return;
  CallState call = it->second;
  // Relay to the peer leg; on its RELEASE COMPLETE we finish cleanup.
  const std::size_t peer_port = from_port == call.caller_port
                                    ? call.callee_port
                                    : call.caller_port;
  if (call.routed) remove_routes(call);
  send_to_port(peer_port, m);
}

void SignalingNetwork::handle_release_complete(const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) return;
  CallState call = it->second;
  calls_.erase(it);
  free_vci(call.caller_port, call.caller_vc.vci);
  free_vci(call.callee_port, call.callee_vc.vci);
  // Forward the completion to the release initiator: it is the leg that
  // has not answered with RELEASE COMPLETE itself. The initiator's
  // address rode in the message.
  const std::size_t to_port = m.calling_party == call.caller_party
                                  ? call.callee_port
                                  : call.caller_port;
  send_to_port(to_port, m);
}

}  // namespace hni::sig
