#include "sig/network.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <tuple>

namespace hni::sig {

SignalingNetwork::SignalingNetwork(core::Testbed& bed,
                                   std::vector<net::Switch*> switches,
                                   std::size_t agent_switch,
                                   std::size_t agent_port,
                                   SignalingConfig config)
    : bed_(bed),
      switches_(std::move(switches)),
      agent_sw_(agent_switch),
      agent_port_(agent_port),
      config_(config),
      tap_(bed.sim(), config.fault_seed) {
  if (switches_.empty() || agent_sw_ >= switches_.size()) {
    throw std::invalid_argument("SignalingNetwork: bad agent switch");
  }
  core::StationConfig sc;
  sc.name = "call-agent";
  // The agent is a beefy dedicated server: give it headroom so call
  // processing is dominated by protocol transport, not agent CPU.
  sc.host.cpu.clock_hz = 100e6;
  sc.host.cpu.cpi = 1.0;
  agent_ = &bed_.add_station(sc);
  bed_.connect_to_switch(*agent_, *switches_[agent_sw_], agent_port_);
  bed_.connect_from_switch(*switches_[agent_sw_], agent_port_, *agent_);

  tracer_ = &bed_.tracer();
  source_ = tracer_->intern("sig.agent");
  const sim::MetricScope scope(bed_.metrics(), "sig.agent");
  scope.expose("calls_routed", calls_routed_);
  scope.expose("calls_refused", calls_refused_);
  scope.expose("calls_refused_cac", calls_refused_cac_);
  scope.expose("duplicate_setups", duplicate_setups_);
  scope.expose("audit_ticks", audit_ticks_);
  scope.expose("enquiries_sent", enquiries_);
  scope.expose("calls_reclaimed", calls_reclaimed_);
  scope.expose("vcis_reclaimed", vcis_reclaimed_);
  scope.expose("routes_reclaimed", routes_reclaimed_);
  scope.expose("restarts_sent", restarts_sent_);
  scope.expose("restart_acks", restart_acks_);
  scope.expose("malformed_frames", malformed_);
  scope.expose("reroutes", reroutes_);
  scope.expose("reverts", reverts_);
  scope.expose("reroutes_failed", reroutes_failed_);
  scope.expose("sig_reroutes", sig_reroutes_);
  scope.gauge("active_calls",
              [this] { return static_cast<double>(calls_.size()); });
  scope.gauge("stranded_vcis",
              [this] { return static_cast<double>(stranded_vcis()); });
  scope.gauge("calls_on_protection", [this] {
    return static_cast<double>(calls_on_protection());
  });
  tap_.register_metrics(scope.sub("tap"));
}

SignalingNetwork::SignalingNetwork(core::Testbed& bed, net::Switch& sw,
                                   std::size_t agent_port,
                                   SignalingConfig config)
    : SignalingNetwork(bed, std::vector<net::Switch*>{&sw}, 0, agent_port,
                       std::move(config)) {}

void SignalingNetwork::trace(sim::TraceEventId id, std::uint32_t a,
                             std::uint32_t b, std::uint64_t seq) {
  if (tracer_) tracer_->emit({bed_.sim().now(), id, source_, a, b, seq});
}

// --- topology ---------------------------------------------------------

std::size_t SignalingNetwork::add_trunk(std::size_t sw_a, std::size_t port_a,
                                        std::size_t sw_b, std::size_t port_b,
                                        net::LossModel loss,
                                        sim::Time propagation) {
  if (sw_a >= switches_.size() || sw_b >= switches_.size() || sw_a == sw_b) {
    throw std::invalid_argument("SignalingNetwork: bad trunk endpoints");
  }
  const auto [ab, ba] = bed_.connect_trunk(*switches_[sw_a], port_a,
                                           *switches_[sw_b], port_b, loss,
                                           propagation);
  const std::size_t id = trunks_.size();
  trunks_.push_back(Trunk{sw_a, port_a, sw_b, port_b, ab, ba});
  const auto watch = [this, id](bool) { on_trunk_state(id); };
  ab->add_state_observer(watch);
  ba->add_state_observer(watch);
  next_vci_[trunk_key(id)] = config_.first_data_vci;
  return id;
}

void SignalingNetwork::trunk_exit(std::size_t trunk, std::size_t sw,
                                  std::size_t& tx_port, std::size_t& peer_sw,
                                  std::size_t& peer_port) const {
  const Trunk& t = trunks_.at(trunk);
  if (sw == t.sw_a) {
    tx_port = t.port_a;
    peer_sw = t.sw_b;
    peer_port = t.port_b;
  } else {
    tx_port = t.port_b;
    peer_sw = t.sw_a;
    peer_port = t.port_a;
  }
}

std::optional<std::vector<std::size_t>> SignalingNetwork::find_path(
    std::size_t from_sw, std::size_t to_sw, bool avoid_down) const {
  if (from_sw == to_sw) return std::vector<std::size_t>{};
  const std::size_t n = switches_.size();
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> via_trunk(n, 0), via_sw(n, 0);
  std::deque<std::size_t> frontier{from_sw};
  seen[from_sw] = true;
  while (!frontier.empty()) {
    const std::size_t s = frontier.front();
    frontier.pop_front();
    // Trunks scanned in id order: ties resolve to the lowest trunk id,
    // so the chosen path is deterministic across runs and platforms.
    for (std::size_t id = 0; id < trunks_.size(); ++id) {
      const Trunk& t = trunks_[id];
      if (avoid_down && t.down) continue;
      std::size_t other;
      if (t.sw_a == s) {
        other = t.sw_b;
      } else if (t.sw_b == s) {
        other = t.sw_a;
      } else {
        continue;
      }
      if (seen[other]) continue;
      seen[other] = true;
      via_trunk[other] = id;
      via_sw[other] = s;
      if (other == to_sw) {
        std::vector<std::size_t> path;
        for (std::size_t at = to_sw; at != from_sw; at = via_sw[at]) {
          path.push_back(via_trunk[at]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(other);
    }
  }
  return std::nullopt;
}

bool SignalingNetwork::path_has_down_trunk(
    const std::vector<std::size_t>& path) const {
  for (const std::size_t t : path) {
    if (trunks_[t].down) return true;
  }
  return false;
}

bool SignalingNetwork::path_all_up(
    const std::vector<std::size_t>& path) const {
  return !path_has_down_trunk(path);
}

// --- attachment -------------------------------------------------------

CallControl& SignalingNetwork::attach(core::Station& station, std::size_t sw,
                                      std::size_t port, std::uint16_t party) {
  if (sw >= switches_.size()) {
    throw std::invalid_argument("SignalingNetwork: bad endpoint switch");
  }
  if (sw == agent_sw_ && port == agent_port_) {
    throw std::invalid_argument("SignalingNetwork: port taken by agent");
  }
  const auto sig_path = find_path(sw, agent_sw_, /*avoid_down=*/true);
  if (!sig_path) {
    throw std::invalid_argument("SignalingNetwork: no trunk path to agent");
  }
  bed_.connect_to_switch(station, *switches_[sw], port);
  bed_.connect_from_switch(*switches_[sw], port, station);

  const std::size_t ep = endpoints_.size();
  Endpoint e;
  e.sw = sw;
  e.port = port;
  e.party = party;
  e.sig_path = *sig_path;
  e.sig_primary = *sig_path;
  endpoints_.push_back(std::move(e));
  program_sig_relay(ep);

  agent_->nic().open_vc(agent_rx_vc(ep), aal::AalType::kAal5);
  agent_->host().set_vc_handler(
      agent_rx_vc(ep), [this, ep](aal::Bytes sdu, const host::RxInfo&) {
        on_frame(ep, std::move(sdu));
      });

  next_vci_[ep_key(ep)] = config_.first_data_vci;
  controls_.push_back(std::make_unique<CallControl>(
      station, party, config_.endpoint, tracer_,
      sim::MetricScope(bed_.metrics(),
                       "sig.endpoint." + std::to_string(party)),
      config_.fault_seed * 7919 + party));
  return *controls_.back();
}

void SignalingNetwork::program_sig_relay(std::size_t ep) {
  Endpoint& e = endpoints_[ep];
  e.sig_routes.clear();
  const std::vector<atm::VcId> hops(e.sig_path.size(), sig_hop_vc(ep));
  // Endpoint -> agent.
  program_direction(e.sw, e.port, kSignalingVc, agent_port_,
                    agent_rx_vc(ep), e.sig_path, hops, 1, false,
                    e.sig_routes);
  // Agent -> endpoint (same trunks, walked backwards).
  std::vector<std::size_t> rev(e.sig_path.rbegin(), e.sig_path.rend());
  program_direction(agent_sw_, agent_port_, agent_tx_vc(ep), e.port,
                    kSignalingVc, rev, std::vector<atm::VcId>(rev.size(),
                                                              sig_hop_vc(ep)),
                    1, false, e.sig_routes);
}

void SignalingNetwork::remove_sig_relay(std::size_t ep) {
  Endpoint& e = endpoints_[ep];
  for (const RouteKey& rk : e.sig_routes) {
    switches_[rk.sw]->remove_route(rk.in_port, rk.vc);
  }
  e.sig_routes.clear();
}

bool SignalingNetwork::reroute_sig(std::size_t ep, bool to_primary) {
  Endpoint& e = endpoints_[ep];
  std::vector<std::size_t> target;
  if (to_primary) {
    target = e.sig_primary;
  } else {
    const auto found = find_path(e.sw, agent_sw_, /*avoid_down=*/true);
    if (!found) return false;  // isolated until a trunk recovers
    target = *found;
  }
  if (target == e.sig_path) return true;
  remove_sig_relay(ep);
  e.sig_path = std::move(target);
  program_sig_relay(ep);
  e.sig_on_protection = e.sig_path != e.sig_primary;
  sig_reroutes_.add();
  return true;
}

const SignalingNetwork::Endpoint* SignalingNetwork::endpoint_by_party(
    std::uint16_t party) const {
  for (const auto& e : endpoints_) {
    if (e.party == party) return &e;
  }
  return nullptr;
}

std::size_t SignalingNetwork::endpoint_index(const Endpoint* e) const {
  return static_cast<std::size_t>(e - endpoints_.data());
}

// --- VCI allocators ---------------------------------------------------

std::optional<std::uint16_t> SignalingNetwork::allocate_vci(
    std::uint32_t key) {
  auto& free = free_vcis_[key];
  if (!free.empty()) {
    const std::uint16_t vci = free.back();
    free.pop_back();
    return vci;
  }
  auto& next = next_vci_[key];
  if (next == 0) next = config_.first_data_vci;
  if (next >= config_.first_data_vci + config_.max_vcs_per_port) {
    return std::nullopt;
  }
  return next++;
}

void SignalingNetwork::free_vci(std::uint32_t key, std::uint16_t vci) {
  auto& free = free_vcis_[key];
  // Reclamation paths can race the normal handshake; freeing twice
  // would hand the same VCI to two calls.
  if (std::find(free.begin(), free.end(), vci) != free.end()) return;
  free.push_back(vci);
}

// --- admission control ------------------------------------------------

std::vector<std::size_t> SignalingNetwork::path_cac_keys(
    const AgentCall& call, const std::vector<std::size_t>& path) const {
  std::vector<std::size_t> keys;
  const Endpoint& caller = endpoints_[call.caller_ep];
  const Endpoint& callee = endpoints_[call.callee_ep];
  // Forward direction: every trunk exit port, then the callee's port.
  std::size_t sw = caller.sw;
  for (const std::size_t t : path) {
    std::size_t tx, peer_sw, peer_port;
    trunk_exit(t, sw, tx, peer_sw, peer_port);
    keys.push_back(cac_key(sw, tx));
    sw = peer_sw;
  }
  keys.push_back(cac_key(sw, callee.port));
  // Reverse direction mirrors it.
  sw = callee.sw;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    std::size_t tx, peer_sw, peer_port;
    trunk_exit(*it, sw, tx, peer_sw, peer_port);
    keys.push_back(cac_key(sw, tx));
    sw = peer_sw;
  }
  keys.push_back(cac_key(sw, caller.port));
  return keys;
}

bool SignalingNetwork::cac_admits_keys(const std::vector<std::size_t>& keys,
                                       double pcr) const {
  if (config_.cac_utilization <= 0.0 || pcr <= 0.0) return true;
  // A self-call (or a path revisiting a port) commits the same port
  // more than once; the check must mirror the commit.
  for (const std::size_t key : keys) {
    const double need =
        pcr * static_cast<double>(std::count(keys.begin(), keys.end(), key));
    const double limit =
        config_.cac_utilization *
        switches_[key >> 8]->config().port_rate.cells_per_second();
    const auto it = committed_pcr_.find(key);
    const double committed = it != committed_pcr_.end() ? it->second : 0.0;
    if (committed + need > limit) return false;
  }
  return true;
}

void SignalingNetwork::cac_apply(const std::vector<std::size_t>& keys,
                                 double pcr) {
  for (const std::size_t key : keys) {
    auto& slot = committed_pcr_[key];
    slot += pcr;
    if (slot < 1e-9) slot = 0.0;  // swallow float drift on release
  }
}

void SignalingNetwork::cac_release(AgentCall& call) {
  if (!call.cac_committed) return;
  cac_apply(call.cac_keys, -call.pcr);
  call.cac_committed = false;
}

// --- messaging --------------------------------------------------------

void SignalingNetwork::send_to_endpoint(std::size_t ep, const Message& m) {
  tap_.apply(m, [this, ep](const Message& mm) {
    agent_->host().send(agent_tx_vc(ep), aal::AalType::kAal5, mm.encode());
  });
}

void SignalingNetwork::refuse(std::size_t ep, const Message& setup,
                              Cause cause) {
  calls_refused_.add();
  Message m;
  m.type = MessageType::kRelease;
  m.call_id = setup.call_id;
  m.cause = cause;
  send_to_endpoint(ep, m);
}

void SignalingNetwork::on_frame(std::size_t from_ep, aal::Bytes sdu) {
  const DecodeResult r = decode_checked(sdu);
  if (!r.message) {
    malformed_.add();
    trace(sim::TraceEventId::kSigMalformed,
          static_cast<std::uint32_t>(r.error),
          static_cast<std::uint32_t>(from_ep), r.call_id_hint);
    if (r.error == Cause::kMessageTypeNonExistent) {
      Message st;
      st.type = MessageType::kStatus;
      st.call_id = r.call_id_hint;
      st.cause = r.error;
      st.call_state = calls_.count(r.call_id_hint) != 0
                          ? CallState::kConnected
                          : CallState::kNull;
      send_to_endpoint(from_ep, st);
    }
    return;
  }
  const Message& m = *r.message;
  switch (m.type) {
    case MessageType::kSetup:
      handle_setup(from_ep, m);
      break;
    case MessageType::kConnect:
      handle_connect(m);
      break;
    case MessageType::kRelease:
      handle_release(from_ep, m);
      break;
    case MessageType::kReleaseComplete:
      handle_release_complete(m);
      break;
    case MessageType::kStatus:
      handle_status(m);
      break;
    case MessageType::kStatusEnquiry: {
      // Endpoints don't normally enquire, but answering is cheap and
      // keeps the protocol symmetric.
      Message st;
      st.type = MessageType::kStatus;
      st.call_id = m.call_id;
      st.call_state = calls_.count(m.call_id) != 0 ? CallState::kConnected
                                                   : CallState::kNull;
      send_to_endpoint(from_ep, st);
      break;
    }
    case MessageType::kRestart:
      break;  // only the network originates RESTART
    case MessageType::kRestartAck:
      handle_restart_ack(from_ep);
      break;
  }
}

void SignalingNetwork::handle_setup(std::size_t from_ep, const Message& m) {
  const Endpoint* callee = endpoint_by_party(m.called_party);
  if (callee == nullptr) {
    refuse(from_ep, m, Cause::kNoRouteToDestination);
    return;
  }
  const std::size_t callee_ep = endpoint_index(callee);
  auto it = calls_.find(m.call_id);
  if (it != calls_.end()) {
    // Endpoint retransmission (T303). Answer from the stored call —
    // allocating again would leak the first set of VCIs.
    duplicate_setups_.add();
    AgentCall& call = it->second;
    if (call.routed) {
      // The callee already answered; the lost leg was our CONNECT to
      // the caller. Re-answer it directly.
      Message connect;
      connect.type = MessageType::kConnect;
      connect.call_id = m.call_id;
      connect.calling_party = call.callee_party;
      connect.aal = m.aal;
      connect.pcr_cells_per_second = call.pcr;
      connect.scr_cells_per_second = call.scr;
      connect.weight = call.weight;
      connect.abr = call.abr;
      connect.assigned_vc = call.caller_vc;
      send_to_endpoint(call.caller_ep, connect);
    } else {
      // Still waiting on the callee: the SETUP we forwarded was lost.
      Message fwd = m;
      fwd.assigned_vc = call.callee_vc;
      send_to_endpoint(call.callee_ep, fwd);
    }
    return;
  }

  AgentCall call;
  call.caller_ep = from_ep;
  call.callee_ep = callee_ep;
  call.caller_party = m.calling_party;
  call.callee_party = m.called_party;
  call.pcr = m.pcr_cells_per_second;
  call.scr = m.scr_cells_per_second;
  call.weight = std::max<std::uint16_t>(m.weight, 1);
  call.abr = m.abr;
  call.created = bed_.sim().now();

  // Path first: without connectivity there is nothing to admit.
  const auto path =
      find_path(endpoints_[from_ep].sw, callee->sw, /*avoid_down=*/true);
  if (!path) {
    refuse(from_ep, m, Cause::kNoRouteToDestination);
    return;
  }
  call.path = *path;
  call.primary_path = *path;

  // Admission control precedes VC allocation, so a refusal leaves zero
  // agent state: the endpoint can retry the same reference cleanly.
  const auto keys = path_cac_keys(call, call.path);
  if (!cac_admits_keys(keys, call.pcr)) {
    calls_refused_cac_.add();
    trace(sim::TraceEventId::kSigCacRefusal,
          static_cast<std::uint32_t>(from_ep),
          static_cast<std::uint32_t>(callee_ep), m.call_id);
    refuse(from_ep, m, Cause::kResourceUnavailable);
    return;
  }

  const auto caller_vci = allocate_vci(ep_key(from_ep));
  const auto callee_vci = allocate_vci(ep_key(callee_ep));
  bool trunks_ok = caller_vci && callee_vci;
  for (const std::size_t t : call.path) {
    if (!trunks_ok) break;
    const auto tv = allocate_vci(trunk_key(t));
    if (!tv) {
      trunks_ok = false;
      break;
    }
    call.trunk_vcis.push_back(*tv);
  }
  if (!trunks_ok) {
    if (caller_vci) free_vci(ep_key(from_ep), *caller_vci);
    if (callee_vci) free_vci(ep_key(callee_ep), *callee_vci);
    for (std::size_t i = 0; i < call.trunk_vcis.size(); ++i) {
      free_vci(trunk_key(call.path[i]), call.trunk_vcis[i]);
    }
    refuse(from_ep, m, Cause::kNetworkOutOfVcs);
    return;
  }
  call.caller_vc = {0, *caller_vci};
  call.callee_vc = {0, *callee_vci};
  if (config_.cac_utilization > 0.0 && call.pcr > 0.0) {
    cac_apply(keys, call.pcr);
    call.cac_keys = keys;
    call.cac_committed = true;
  }
  calls_.emplace(m.call_id, std::move(call));
  ensure_audit_timer();

  Message fwd = m;
  fwd.assigned_vc = calls_.at(m.call_id).callee_vc;
  send_to_endpoint(callee_ep, fwd);
}

// --- route programming ------------------------------------------------

void SignalingNetwork::program_direction(
    std::size_t src_sw, std::size_t src_port, atm::VcId src_vc,
    std::size_t dst_port, atm::VcId dst_vc,
    const std::vector<std::size_t>& path,
    const std::vector<atm::VcId>& hop_vcs, std::uint16_t weight, bool abr,
    std::vector<RouteKey>& routes) {
  std::size_t sw = src_sw;
  std::size_t in_port = src_port;
  atm::VcId in_vc = src_vc;
  for (std::size_t i = 0; i < path.size(); ++i) {
    std::size_t tx, peer_sw, peer_port;
    trunk_exit(path[i], sw, tx, peer_sw, peer_port);
    switches_[sw]->add_route(in_port, in_vc, tx, hop_vcs[i], weight, abr);
    routes.push_back(RouteKey{sw, in_port, in_vc});
    sw = peer_sw;
    in_port = peer_port;
    in_vc = hop_vcs[i];
  }
  switches_[sw]->add_route(in_port, in_vc, dst_port, dst_vc, weight, abr);
  routes.push_back(RouteKey{sw, in_port, in_vc});
}

void SignalingNetwork::program_routes(AgentCall& call) {
  const Endpoint& caller = endpoints_[call.caller_ep];
  const Endpoint& callee = endpoints_[call.callee_ep];
  call.routes.clear();
  std::vector<atm::VcId> fwd_vcs;
  fwd_vcs.reserve(call.trunk_vcis.size());
  for (const std::uint16_t v : call.trunk_vcis) {
    fwd_vcs.push_back(atm::VcId{0, v});
  }
  program_direction(caller.sw, caller.port, call.caller_vc, callee.port,
                    call.callee_vc, call.path, fwd_vcs, call.weight,
                    call.abr, call.routes);
  const std::vector<std::size_t> rev_path(call.path.rbegin(),
                                          call.path.rend());
  const std::vector<atm::VcId> rev_vcs(fwd_vcs.rbegin(), fwd_vcs.rend());
  program_direction(callee.sw, callee.port, call.callee_vc, caller.port,
                    call.caller_vc, rev_path, rev_vcs, call.weight, call.abr,
                    call.routes);
  // UPC lives at the two ingress switches only: inside the fabric the
  // stream is already conformant (and trunk hops must not re-police a
  // contract the edge already enforced).
  if (call.scr > 0.0 && call.pcr > 0.0) {
    // VBR contract: two-rate trTCM meter (CIR = SCR, PIR = PCR) —
    // sustained-rate excess is tagged CLP, peak-rate excess dropped.
    atm::TrTcmConfig meter;
    meter.cir_cells_per_second = call.scr;
    meter.pir_cells_per_second = call.pcr;
    meter.cbs_cells = config_.meter_cbs_cells;
    meter.pbs_cells = config_.meter_pbs_cells;
    switches_[caller.sw]->add_meter(caller.port, call.caller_vc, meter);
    switches_[callee.sw]->add_meter(callee.port, call.callee_vc, meter);
  } else if (call.pcr > 0.0) {
    for (const Endpoint* e : {&caller, &callee}) {
      const sim::Time cdvt = static_cast<sim::Time>(
          config_.police_cdvt_slots *
          static_cast<double>(
              switches_[e->sw]->config().port_rate.cell_slot()));
      switches_[e->sw]->add_policer(
          e->port, e == &caller ? call.caller_vc : call.callee_vc, call.pcr,
          cdvt, net::Switch::PoliceAction::kDrop);
    }
  }
}

void SignalingNetwork::remove_routes(AgentCall& call) {
  for (const RouteKey& rk : call.routes) {
    switches_[rk.sw]->remove_route(rk.in_port, rk.vc);
  }
  call.routes.clear();
}

void SignalingNetwork::handle_connect(const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) return;
  AgentCall& call = it->second;
  if (!call.routed) {
    // A trunk on the admitted path may have died between SETUP and
    // CONNECT; repath before programming rather than installing hops
    // into a black hole.
    if (path_has_down_trunk(call.path)) {
      std::size_t trigger = 0;
      for (const std::size_t t : call.path) {
        if (trunks_[t].down) {
          trigger = t;
          break;
        }
      }
      reroute_call(m.call_id, /*to_primary=*/false, trigger);
    }
    program_routes(call);
    call.routed = true;
    call.strikes = 0;
    calls_routed_.add();
  }
  // Duplicate CONNECTs still answer the caller: its copy may be the
  // one that was lost.
  Message fwd = m;
  fwd.assigned_vc = call.caller_vc;
  send_to_endpoint(call.caller_ep, fwd);
}

void SignalingNetwork::handle_release(std::size_t from_ep,
                                      const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) {
    // Retransmitted RELEASE for a call already completed: confirm
    // directly or the endpoint's T308 runs to exhaustion.
    Message rc;
    rc.type = MessageType::kReleaseComplete;
    rc.call_id = m.call_id;
    rc.calling_party = m.calling_party;
    rc.cause = m.cause;
    send_to_endpoint(from_ep, rc);
    return;
  }
  AgentCall& call = it->second;
  if (call.routed) {
    remove_routes(call);
    call.routed = false;
  }
  // Relay to the peer leg; on its RELEASE COMPLETE we finish cleanup.
  const std::size_t peer =
      from_ep == call.caller_ep ? call.callee_ep : call.caller_ep;
  send_to_endpoint(peer, m);
}

void SignalingNetwork::handle_release_complete(const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) return;
  AgentCall call = std::move(it->second);
  calls_.erase(it);
  cac_release(call);
  free_vci(ep_key(call.caller_ep), call.caller_vc.vci);
  free_vci(ep_key(call.callee_ep), call.callee_vc.vci);
  for (std::size_t i = 0; i < call.path.size(); ++i) {
    free_vci(trunk_key(call.path[i]), call.trunk_vcis[i]);
  }
  // Forward the completion to the release initiator: it is the leg that
  // has not answered with RELEASE COMPLETE itself. The initiator's
  // address rode in the message.
  const std::size_t to_ep = m.calling_party == call.caller_party
                                ? call.callee_ep
                                : call.caller_ep;
  send_to_endpoint(to_ep, m);
}

// --- protection switching ---------------------------------------------

void SignalingNetwork::on_trunk_state(std::size_t trunk) {
  Trunk& t = trunks_[trunk];
  const bool down = t.ab->is_down() || t.ba->is_down();
  if (down == t.down) return;
  t.down = down;
  ++t.epoch;
  ++fabric_epoch_;
  if (!config_.protection.enabled) return;
  const std::uint64_t epoch = t.epoch;
  if (down) {
    bed_.sim().after(config_.protection.holdoff, [this, trunk, epoch] {
      if (trunks_[trunk].epoch == epoch && trunks_[trunk].down) {
        protect_sweep();
      }
    });
  } else {
    bed_.sim().after(config_.protection.revert_delay, [this, trunk, epoch] {
      if (trunks_[trunk].epoch == epoch && !trunks_[trunk].down) {
        revert_sweep();
      }
    });
  }
}

bool SignalingNetwork::reroute_call(std::uint32_t call_id, bool to_primary,
                                    std::size_t trigger) {
  AgentCall& call = calls_.at(call_id);
  const Endpoint& caller = endpoints_[call.caller_ep];
  const Endpoint& callee = endpoints_[call.callee_ep];
  std::vector<std::size_t> target;
  if (to_primary) {
    target = call.primary_path;
  } else {
    const auto found =
        find_path(caller.sw, callee.sw, /*avoid_down=*/true);
    if (!found) {
      reroutes_failed_.add();
      call.reroute_failed_epoch = fabric_epoch_;
      return false;
    }
    target = *found;
  }
  if (target == call.path) return true;

  // New trunk VCIs first — bail with nothing disturbed on exhaustion.
  std::vector<std::uint16_t> new_vcis;
  new_vcis.reserve(target.size());
  for (const std::size_t t : target) {
    const auto v = allocate_vci(trunk_key(t));
    if (!v) {
      for (std::size_t i = 0; i < new_vcis.size(); ++i) {
        free_vci(trunk_key(target[i]), new_vcis[i]);
      }
      reroutes_failed_.add();
      call.reroute_failed_epoch = fabric_epoch_;
      return false;
    }
    new_vcis.push_back(*v);
  }
  // CAC on the new path: release our own commitment, test, recommit
  // whichever path wins.
  if (call.cac_committed) {
    const auto new_keys = path_cac_keys(call, target);
    cac_apply(call.cac_keys, -call.pcr);
    if (!cac_admits_keys(new_keys, call.pcr)) {
      cac_apply(call.cac_keys, call.pcr);
      for (std::size_t i = 0; i < new_vcis.size(); ++i) {
        free_vci(trunk_key(target[i]), new_vcis[i]);
      }
      reroutes_failed_.add();
      call.reroute_failed_epoch = fabric_epoch_;
      return false;
    }
    cac_apply(new_keys, call.pcr);
    call.cac_keys = new_keys;
  }
  if (call.routed) remove_routes(call);
  for (std::size_t i = 0; i < call.path.size(); ++i) {
    free_vci(trunk_key(call.path[i]), call.trunk_vcis[i]);
  }
  call.path = std::move(target);
  call.trunk_vcis = std::move(new_vcis);
  if (call.routed) program_routes(call);
  call.on_protection = call.path != call.primary_path;
  if (to_primary) {
    reverts_.add();
  } else {
    reroutes_.add();
  }
  trace(sim::TraceEventId::kSigReroute, to_primary ? 0 : 1,
        static_cast<std::uint32_t>(trigger), call_id);
  return true;
}

void SignalingNetwork::protect_sweep() {
  // Signalling relays first: control reachability is what lets the rest
  // of the protocol (release, audit, defect reports) keep working.
  for (std::size_t ep = 0; ep < endpoints_.size(); ++ep) {
    if (path_has_down_trunk(endpoints_[ep].sig_path)) {
      reroute_sig(ep, /*to_primary=*/false);
    }
  }
  // Contracted calls first (largest committed rate first), then best
  // effort; call id breaks ties so the order is deterministic.
  std::vector<std::uint32_t> ids;
  for (const auto& [id, call] : calls_) {
    if (!call.routed || !path_has_down_trunk(call.path)) continue;
    if (call.reroute_failed_epoch == fabric_epoch_) continue;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end(), [this](std::uint32_t a, std::uint32_t b) {
    const AgentCall& ca = calls_.at(a);
    const AgentCall& cb = calls_.at(b);
    return std::make_tuple(!ca.cac_committed, -ca.pcr, a) <
           std::make_tuple(!cb.cac_committed, -cb.pcr, b);
  });
  for (const std::uint32_t id : ids) {
    std::size_t trigger = 0;
    for (const std::size_t t : calls_.at(id).path) {
      if (trunks_[t].down) {
        trigger = t;
        break;
      }
    }
    reroute_call(id, /*to_primary=*/false, trigger);
  }
}

void SignalingNetwork::revert_sweep() {
  for (std::size_t ep = 0; ep < endpoints_.size(); ++ep) {
    if (endpoints_[ep].sig_on_protection &&
        path_all_up(endpoints_[ep].sig_primary)) {
      reroute_sig(ep, /*to_primary=*/true);
    }
  }
  std::vector<std::uint32_t> ids;
  for (const auto& [id, call] : calls_) {
    if (call.on_protection && path_all_up(call.primary_path)) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  for (const std::uint32_t id : ids) {
    const std::size_t trigger =
        calls_.at(id).primary_path.empty() ? 0 : calls_.at(id).primary_path[0];
    reroute_call(id, /*to_primary=*/true, trigger);
  }
}

std::size_t SignalingNetwork::calls_on_protection() const {
  std::size_t n = 0;
  for (const auto& [id, call] : calls_) {
    if (call.on_protection) ++n;
  }
  return n;
}

// --- status audit -----------------------------------------------------

void SignalingNetwork::handle_status(const Message& m) {
  if (m.cause == Cause::kDestinationOutOfOrder) {
    // Endpoint defect report (NIC-level AIS / loss of continuity): run
    // the protection sweep even if our own trunk observer somehow
    // missed the failure. Not an audit reply — don't touch strikes.
    // The sweep waits out the holdoff (a transient the trunk observer
    // is already sitting on must not be escalated by the endpoint's
    // report), and concurrent reports share one pending sweep.
    if (config_.protection.enabled && !defect_sweep_pending_) {
      defect_sweep_pending_ = true;
      bed_.sim().after(config_.protection.holdoff, [this] {
        defect_sweep_pending_ = false;
        protect_sweep();
      });
    }
    return;
  }
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) return;
  AgentCall& call = it->second;
  if (call.enquiries_outstanding > 0) --call.enquiries_outstanding;
  if (m.call_state == CallState::kNull) {
    // An endpoint no longer knows a call we still carry: its state is
    // authoritative (it owns the VC); reclaim ours.
    reclaim_call(m.call_id, Cause::kTemporaryFailure);
    return;
  }
  // Only a fully answered round clears suspicion — resetting on the
  // first reply would let one live leg mask a dead one forever.
  if (call.enquiries_outstanding == 0) call.strikes = 0;
}

void SignalingNetwork::ensure_audit_timer() {
  // Armed only while there is something to audit, so a quiescent
  // network leaves the event queue empty (sim.run() terminates).
  if (audit_armed_ || config_.audit_period <= 0 || calls_.empty()) return;
  audit_armed_ = true;
  bed_.sim().after(config_.audit_period, [this] { audit_tick(); });
}

void SignalingNetwork::audit_tick() {
  audit_armed_ = false;
  audit_ticks_.add();
  const sim::Time now = bed_.sim().now();

  std::vector<std::uint32_t> ids;
  ids.reserve(calls_.size());
  for (const auto& [id, call] : calls_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  std::vector<std::uint32_t> to_reclaim;
  for (const std::uint32_t id : ids) {
    AgentCall& call = calls_.at(id);
    // Grace period: a call younger than one audit round is still mid-
    // handshake by design.
    if (now - call.created < config_.audit_period) continue;
    if (!call.routed) {
      // Half-open far beyond any handshake latency: a lost message the
      // endpoint timers failed to repair (or recovery is off there).
      if (++call.strikes >= config_.audit_strikes) to_reclaim.push_back(id);
      continue;
    }
    if (call.enquiries_outstanding > 0 &&
        ++call.strikes >= config_.audit_strikes) {
      // Both legs have ignored enquiries for several rounds.
      to_reclaim.push_back(id);
      continue;
    }
    // Verify both legs still know the call.
    call.enquiries_outstanding = 2;
    enquiries_.add(2);
    Message enq;
    enq.type = MessageType::kStatusEnquiry;
    enq.call_id = id;
    send_to_endpoint(call.caller_ep, enq);
    send_to_endpoint(call.callee_ep, enq);
  }
  for (const std::uint32_t id : to_reclaim) {
    reclaim_call(id, Cause::kRecoveryOnTimerExpiry);
  }
  reconcile_routes();
  ensure_audit_timer();
}

void SignalingNetwork::reclaim_call(std::uint32_t call_id, Cause cause) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  AgentCall call = std::move(it->second);
  calls_.erase(it);
  cac_release(call);
  if (call.routed) {
    routes_reclaimed_.add(call.routes.size());
    remove_routes(call);
  }
  free_vci(ep_key(call.caller_ep), call.caller_vc.vci);
  free_vci(ep_key(call.callee_ep), call.callee_vc.vci);
  for (std::size_t i = 0; i < call.path.size(); ++i) {
    free_vci(trunk_key(call.path[i]), call.trunk_vcis[i]);
  }
  vcis_reclaimed_.add(2 + call.path.size());
  calls_reclaimed_.add();
  trace(sim::TraceEventId::kSigVcReclaimed,
        static_cast<std::uint32_t>(call.caller_ep), call.caller_vc.vci,
        call_id);
  trace(sim::TraceEventId::kSigVcReclaimed,
        static_cast<std::uint32_t>(call.callee_ep), call.callee_vc.vci,
        call_id);
  // Tell both endpoints to clear whatever they still hold. RELEASE for
  // an unknown call is harmless (confirmed and forgotten).
  Message rel;
  rel.type = MessageType::kRelease;
  rel.call_id = call_id;
  rel.cause = cause;
  send_to_endpoint(call.caller_ep, rel);
  send_to_endpoint(call.callee_ep, rel);
}

bool SignalingNetwork::route_owned(std::size_t sw, std::size_t in_port,
                                   atm::VcId vc) const {
  for (const auto& [id, call] : calls_) {
    for (const RouteKey& rk : call.routes) {
      if (rk.sw == sw && rk.in_port == in_port && rk.vc == vc) return true;
    }
  }
  return false;
}

void SignalingNetwork::reconcile_routes() {
  // Any data route no active call owns is debris (typically post-crash:
  // the call table died but the fabric kept forwarding). Collect, sort
  // for determinism, remove. VCIs are not freed here — the allocator
  // state is reconciled by the call-table paths, not the fabric sweep.
  // Signalling relays (endpoint and trunk hops alike) sit below
  // first_data_vci and are never touched.
  std::vector<std::tuple<std::size_t, std::size_t, std::uint16_t>> stale;
  for (std::size_t si = 0; si < switches_.size(); ++si) {
    switches_[si]->for_each_route(
        [this, si, &stale](std::size_t in_port, atm::VcId vc, std::size_t,
                           atm::VcId) {
          if (vc.vpi != 0 || vc.vci < config_.first_data_vci) return;
          if (route_owned(si, in_port, vc)) return;
          stale.emplace_back(si, in_port, vc.vci);
        });
  }
  std::sort(stale.begin(), stale.end());
  for (const auto& [si, port, vci] : stale) {
    switches_[si]->remove_route(port, atm::VcId{0, vci});
    routes_reclaimed_.add();
  }
}

// --- restart ----------------------------------------------------------

void SignalingNetwork::crash_restart() {
  // The agent process dies and restarts: volatile state (call table,
  // VCI allocators, pending audits) is gone. Routes in the fabric,
  // provisioned signalling relays and endpoint call state survived and
  // must be reconciled.
  calls_.clear();
  free_vcis_.clear();
  // The CAC books are volatile too: with no calls there is no committed
  // capacity, and re-admission rebuilds them from live SETUPs.
  committed_pcr_.clear();
  for (std::size_t ep = 0; ep < endpoints_.size(); ++ep) {
    next_vci_[ep_key(ep)] = config_.first_data_vci;
  }
  for (std::size_t t = 0; t < trunks_.size(); ++t) {
    next_vci_[trunk_key(t)] = config_.first_data_vci;
  }
  ++restart_instance_;
  reconcile_routes();
  for (std::size_t ep = 0; ep < endpoints_.size(); ++ep) {
    RestartState& rs = restarts_[ep];
    bed_.sim().cancel(rs.timer);
    rs.pending = true;
    rs.attempts = 0;
    send_restart(ep);
  }
}

void SignalingNetwork::send_restart(std::size_t ep) {
  RestartState& rs = restarts_[ep];
  if (!rs.pending) return;
  if (rs.attempts > config_.t316_retries) {
    // Endpoint unreachable; give up (the audit keeps the fabric clean).
    rs.pending = false;
    return;
  }
  ++rs.attempts;
  restarts_sent_.add();
  trace(sim::TraceEventId::kSigRestart, static_cast<std::uint32_t>(ep),
        rs.attempts, restart_instance_);
  Message m;
  m.type = MessageType::kRestart;
  m.call_id = restart_instance_;
  send_to_endpoint(ep, m);
  rs.timer = bed_.sim().after(config_.t316, [this, ep] {
    auto it = restarts_.find(ep);
    if (it == restarts_.end() || !it->second.pending) return;
    trace(sim::TraceEventId::kSigTimerExpiry, 316, 0, ep);
    send_restart(ep);
  });
}

void SignalingNetwork::handle_restart_ack(std::size_t from_ep) {
  auto it = restarts_.find(from_ep);
  if (it == restarts_.end() || !it->second.pending) return;
  it->second.pending = false;
  bed_.sim().cancel(it->second.timer);
  restart_acks_.add();
}

// --- invariants -------------------------------------------------------

std::size_t SignalingNetwork::stranded_vcis() const {
  std::size_t stranded = 0;
  const auto count_key = [this, &stranded](std::uint32_t key,
                                           const auto& owned) {
    const auto nit = next_vci_.find(key);
    const std::uint16_t next =
        nit == next_vci_.end() ? config_.first_data_vci : nit->second;
    const auto fit = free_vcis_.find(key);
    for (std::uint16_t vci = config_.first_data_vci; vci < next; ++vci) {
      if (fit != free_vcis_.end() &&
          std::find(fit->second.begin(), fit->second.end(), vci) !=
              fit->second.end()) {
        continue;
      }
      if (owned(vci)) continue;
      ++stranded;
    }
  };
  for (std::size_t ep = 0; ep < endpoints_.size(); ++ep) {
    count_key(ep_key(ep), [this, ep](std::uint16_t vci) {
      for (const auto& [id, call] : calls_) {
        if (call.caller_ep == ep && call.caller_vc.vci == vci) return true;
        if (call.callee_ep == ep && call.callee_vc.vci == vci) return true;
      }
      return false;
    });
  }
  for (std::size_t t = 0; t < trunks_.size(); ++t) {
    count_key(trunk_key(t), [this, t](std::uint16_t vci) {
      for (const auto& [id, call] : calls_) {
        for (std::size_t i = 0; i < call.path.size(); ++i) {
          if (call.path[i] == t && call.trunk_vcis[i] == vci) return true;
        }
      }
      return false;
    });
  }
  return stranded;
}

std::size_t SignalingNetwork::stranded_routes() const {
  std::size_t stale = 0;
  for (std::size_t si = 0; si < switches_.size(); ++si) {
    switches_[si]->for_each_route([this, si, &stale](std::size_t in_port,
                                                     atm::VcId vc,
                                                     std::size_t, atm::VcId) {
      if (vc.vpi != 0 || vc.vci < config_.first_data_vci) return;
      if (!route_owned(si, in_port, vc)) ++stale;
    });
  }
  return stale;
}

void SignalingNetwork::audit_invariants(core::InvariantAuditor& auditor) {
  // Every allocated VCI is owned by exactly one active call or sits on
  // the free list — per endpoint leg and per trunk alike.
  for (std::size_t ep = 0; ep < endpoints_.size(); ++ep) {
    const auto nit = next_vci_.find(ep_key(ep));
    const std::uint64_t allocated =
        nit == next_vci_.end() || nit->second == 0
            ? 0
            : static_cast<std::uint64_t>(nit->second - config_.first_data_vci);
    const auto fit = free_vcis_.find(ep_key(ep));
    const std::uint64_t free_count =
        fit == free_vcis_.end() ? 0 : fit->second.size();
    std::uint64_t legs = 0;
    for (const auto& [id, call] : calls_) {
      if (call.caller_ep == ep) ++legs;
      if (call.callee_ep == ep) ++legs;
    }
    auditor.expect_eq(allocated, free_count + legs, "sig vci conservation",
                      "endpoint " + std::to_string(ep) +
                          ": allocated == free + active call legs");
  }
  for (std::size_t t = 0; t < trunks_.size(); ++t) {
    const auto nit = next_vci_.find(trunk_key(t));
    const std::uint64_t allocated =
        nit == next_vci_.end() || nit->second == 0
            ? 0
            : static_cast<std::uint64_t>(nit->second - config_.first_data_vci);
    const auto fit = free_vcis_.find(trunk_key(t));
    const std::uint64_t free_count =
        fit == free_vcis_.end() ? 0 : fit->second.size();
    std::uint64_t hops = 0;
    for (const auto& [id, call] : calls_) {
      hops += std::count(call.path.begin(), call.path.end(), t);
    }
    auditor.expect_eq(allocated, free_count + hops,
                      "sig trunk vci conservation",
                      "trunk " + std::to_string(t) +
                          ": allocated == free + path hops");
  }
  // The fabric carries exactly the data routes of the routed calls:
  // 2 x (path hops + 1) per call, every one owned.
  std::uint64_t expected_routes = 0;
  for (const auto& [id, call] : calls_) {
    expected_routes += call.routes.size();
  }
  std::uint64_t data_routes = 0;
  for (std::size_t si = 0; si < switches_.size(); ++si) {
    switches_[si]->for_each_route(
        [this, &data_routes](std::size_t, atm::VcId vc, std::size_t,
                             atm::VcId) {
          if (vc.vpi != 0 || vc.vci < config_.first_data_vci) return;
          ++data_routes;
        });
  }
  auditor.expect_eq(data_routes, expected_routes, "sig route ownership",
                    "fabric data routes == hops of routed calls");
  // CAC books balance per output port: the committed capacity equals
  // the PCR-weighted occurrences of that port across admitted calls'
  // paths — nothing leaks on release, reclaim, reroute, reversion or
  // agent restart. Compared at whole-cells/s granularity to shrug off
  // float summation order.
  std::unordered_map<std::size_t, double> expected;
  for (const auto& [id, call] : calls_) {
    if (!call.cac_committed) continue;
    for (const std::size_t key : call.cac_keys) {
      expected[key] += call.pcr;
    }
  }
  std::vector<std::size_t> keys;
  for (const auto& [key, v] : committed_pcr_) keys.push_back(key);
  for (const auto& [key, v] : expected) {
    if (committed_pcr_.find(key) == committed_pcr_.end()) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (const std::size_t key : keys) {
    const auto cit = committed_pcr_.find(key);
    const auto eit = expected.find(key);
    auditor.expect_eq(
        static_cast<std::uint64_t>(
            std::llround(cit != committed_pcr_.end() ? cit->second : 0.0)),
        static_cast<std::uint64_t>(
            std::llround(eit != expected.end() ? eit->second : 0.0)),
        "sig cac books",
        "switch " + std::to_string(key >> 8) + " port " +
            std::to_string(key & 0xFF) +
            ": committed PCR == sum of admitted call legs");
  }
  // Each endpoint's NIC table matches its call-control state.
  for (const auto& control : controls_) {
    control->audit_invariants(auditor);
  }
}

}  // namespace hni::sig
