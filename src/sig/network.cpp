#include "sig/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hni::sig {

SignalingNetwork::SignalingNetwork(core::Testbed& bed, net::Switch& sw,
                                   std::size_t agent_port,
                                   SignalingConfig config)
    : bed_(bed),
      sw_(sw),
      agent_port_(agent_port),
      config_(config),
      tap_(bed.sim(), config.fault_seed) {
  core::StationConfig sc;
  sc.name = "call-agent";
  // The agent is a beefy dedicated server: give it headroom so call
  // processing is dominated by protocol transport, not agent CPU.
  sc.host.cpu.clock_hz = 100e6;
  sc.host.cpu.cpi = 1.0;
  agent_ = &bed_.add_station(sc);
  bed_.connect_to_switch(*agent_, sw_, agent_port_);
  bed_.connect_from_switch(sw_, agent_port_, *agent_);

  tracer_ = &bed_.tracer();
  source_ = tracer_->intern("sig.agent");
  const sim::MetricScope scope(bed_.metrics(), "sig.agent");
  scope.expose("calls_routed", calls_routed_);
  scope.expose("calls_refused", calls_refused_);
  scope.expose("calls_refused_cac", calls_refused_cac_);
  scope.expose("duplicate_setups", duplicate_setups_);
  scope.expose("audit_ticks", audit_ticks_);
  scope.expose("enquiries_sent", enquiries_);
  scope.expose("calls_reclaimed", calls_reclaimed_);
  scope.expose("vcis_reclaimed", vcis_reclaimed_);
  scope.expose("routes_reclaimed", routes_reclaimed_);
  scope.expose("restarts_sent", restarts_sent_);
  scope.expose("restart_acks", restart_acks_);
  scope.expose("malformed_frames", malformed_);
  scope.gauge("active_calls",
              [this] { return static_cast<double>(calls_.size()); });
  scope.gauge("stranded_vcis",
              [this] { return static_cast<double>(stranded_vcis()); });
  tap_.register_metrics(scope.sub("tap"));
}

void SignalingNetwork::trace(sim::TraceEventId id, std::uint32_t a,
                             std::uint32_t b, std::uint64_t seq) {
  if (tracer_) tracer_->emit({bed_.sim().now(), id, source_, a, b, seq});
}

CallControl& SignalingNetwork::attach(core::Station& station,
                                      std::size_t port,
                                      std::uint16_t party) {
  if (port == agent_port_) {
    throw std::invalid_argument("SignalingNetwork: port taken by agent");
  }
  bed_.connect_to_switch(station, sw_, port);
  bed_.connect_from_switch(sw_, port, station);

  // Permanent signalling paths: endpoint <-> agent.
  sw_.add_route(port, kSignalingVc, agent_port_, agent_rx_vc(port));
  sw_.add_route(agent_port_, agent_tx_vc(port), port, kSignalingVc);
  agent_->nic().open_vc(agent_rx_vc(port), aal::AalType::kAal5);
  agent_->host().set_vc_handler(
      agent_rx_vc(port),
      [this, port](aal::Bytes sdu, const host::RxInfo&) {
        on_frame(port, std::move(sdu));
      });

  endpoints_.push_back(Endpoint{port, party});
  next_vci_[port] = config_.first_data_vci;
  controls_.push_back(std::make_unique<CallControl>(
      station, party, config_.endpoint, tracer_,
      sim::MetricScope(bed_.metrics(),
                       "sig.endpoint." + std::to_string(party)),
      config_.fault_seed * 7919 + party));
  return *controls_.back();
}

const SignalingNetwork::Endpoint* SignalingNetwork::endpoint_by_party(
    std::uint16_t party) const {
  for (const auto& e : endpoints_) {
    if (e.party == party) return &e;
  }
  return nullptr;
}

std::optional<std::uint16_t> SignalingNetwork::allocate_vci(
    std::size_t port) {
  auto& free = free_vcis_[port];
  if (!free.empty()) {
    const std::uint16_t vci = free.back();
    free.pop_back();
    return vci;
  }
  auto& next = next_vci_[port];
  if (next >= config_.first_data_vci + config_.max_vcs_per_port) {
    return std::nullopt;
  }
  return next++;
}

void SignalingNetwork::free_vci(std::size_t port, std::uint16_t vci) {
  auto& free = free_vcis_[port];
  // Reclamation paths can race the normal handshake; freeing twice
  // would hand the same VCI to two calls.
  if (std::find(free.begin(), free.end(), vci) != free.end()) return;
  free.push_back(vci);
}

// --- admission control ------------------------------------------------

bool SignalingNetwork::cac_admits(std::size_t caller_port,
                                  std::size_t callee_port,
                                  double pcr) const {
  if (config_.cac_utilization <= 0.0 || pcr <= 0.0) return true;
  const double limit =
      config_.cac_utilization * sw_.config().port_rate.cells_per_second();
  // Both legs must fit. A self-call (both legs on one port) commits
  // that port twice, so the check mirrors the commit.
  const double caller_need =
      committed_pcr(caller_port) + (caller_port == callee_port ? 2 : 1) * pcr;
  if (caller_need > limit) return false;
  if (caller_port != callee_port &&
      committed_pcr(callee_port) + pcr > limit) {
    return false;
  }
  return true;
}

void SignalingNetwork::cac_commit(AgentCall& call) {
  if (config_.cac_utilization <= 0.0 || call.pcr <= 0.0) return;
  committed_pcr_[call.caller_port] += call.pcr;
  committed_pcr_[call.callee_port] += call.pcr;
  call.cac_committed = true;
}

void SignalingNetwork::cac_release(const AgentCall& call) {
  if (!call.cac_committed) return;
  for (const std::size_t port : {call.caller_port, call.callee_port}) {
    auto it = committed_pcr_.find(port);
    if (it == committed_pcr_.end()) continue;
    it->second -= call.pcr;
    if (it->second < 1e-9) it->second = 0.0;  // swallow float drift
  }
}

void SignalingNetwork::send_to_port(std::size_t port, const Message& m) {
  tap_.apply(m, [this, port](const Message& mm) {
    agent_->host().send(agent_tx_vc(port), aal::AalType::kAal5, mm.encode());
  });
}

void SignalingNetwork::refuse(std::size_t port, const Message& setup,
                              Cause cause) {
  calls_refused_.add();
  Message m;
  m.type = MessageType::kRelease;
  m.call_id = setup.call_id;
  m.cause = cause;
  send_to_port(port, m);
}

void SignalingNetwork::on_frame(std::size_t from_port, aal::Bytes sdu) {
  const DecodeResult r = decode_checked(sdu);
  if (!r.message) {
    malformed_.add();
    trace(sim::TraceEventId::kSigMalformed,
          static_cast<std::uint32_t>(r.error), from_port, r.call_id_hint);
    if (r.error == Cause::kMessageTypeNonExistent) {
      Message st;
      st.type = MessageType::kStatus;
      st.call_id = r.call_id_hint;
      st.cause = r.error;
      st.call_state = calls_.count(r.call_id_hint) != 0
                          ? CallState::kConnected
                          : CallState::kNull;
      send_to_port(from_port, st);
    }
    return;
  }
  const Message& m = *r.message;
  switch (m.type) {
    case MessageType::kSetup:
      handle_setup(from_port, m);
      break;
    case MessageType::kConnect:
      handle_connect(m);
      break;
    case MessageType::kRelease:
      handle_release(from_port, m);
      break;
    case MessageType::kReleaseComplete:
      handle_release_complete(m);
      break;
    case MessageType::kStatus:
      handle_status(m);
      break;
    case MessageType::kStatusEnquiry: {
      // Endpoints don't normally enquire, but answering is cheap and
      // keeps the protocol symmetric.
      Message st;
      st.type = MessageType::kStatus;
      st.call_id = m.call_id;
      st.call_state = calls_.count(m.call_id) != 0 ? CallState::kConnected
                                                   : CallState::kNull;
      send_to_port(from_port, st);
      break;
    }
    case MessageType::kRestart:
      break;  // only the network originates RESTART
    case MessageType::kRestartAck:
      handle_restart_ack(from_port);
      break;
  }
}

void SignalingNetwork::handle_setup(std::size_t from_port,
                                    const Message& m) {
  const Endpoint* callee = endpoint_by_party(m.called_party);
  if (callee == nullptr) {
    refuse(from_port, m, Cause::kNoRouteToDestination);
    return;
  }
  auto it = calls_.find(m.call_id);
  if (it != calls_.end()) {
    // Endpoint retransmission (T303). Answer from the stored call —
    // allocating again would leak the first pair of VCIs.
    duplicate_setups_.add();
    AgentCall& call = it->second;
    if (call.routed) {
      // The callee already answered; the lost leg was our CONNECT to
      // the caller. Re-answer it directly.
      Message connect;
      connect.type = MessageType::kConnect;
      connect.call_id = m.call_id;
      connect.calling_party = call.callee_party;
      connect.aal = m.aal;
      connect.pcr_cells_per_second = call.pcr;
      connect.scr_cells_per_second = call.scr;
      connect.weight = call.weight;
      connect.abr = call.abr;
      connect.assigned_vc = call.caller_vc;
      send_to_port(call.caller_port, connect);
    } else {
      // Still waiting on the callee: the SETUP we forwarded was lost.
      Message fwd = m;
      fwd.assigned_vc = call.callee_vc;
      send_to_port(call.callee_port, fwd);
    }
    return;
  }
  // Admission control precedes VC allocation, so a refusal leaves zero
  // agent state: the endpoint can retry the same reference cleanly.
  if (!cac_admits(from_port, callee->port, m.pcr_cells_per_second)) {
    calls_refused_cac_.add();
    trace(sim::TraceEventId::kSigCacRefusal,
          static_cast<std::uint32_t>(from_port),
          static_cast<std::uint32_t>(callee->port), m.call_id);
    refuse(from_port, m, Cause::kResourceUnavailable);
    return;
  }
  const auto caller_vci = allocate_vci(from_port);
  const auto callee_vci = allocate_vci(callee->port);
  if (!caller_vci || !callee_vci) {
    if (caller_vci) free_vci(from_port, *caller_vci);
    if (callee_vci) free_vci(callee->port, *callee_vci);
    refuse(from_port, m, Cause::kNetworkOutOfVcs);
    return;
  }

  AgentCall call;
  call.caller_port = from_port;
  call.callee_port = callee->port;
  call.caller_party = m.calling_party;
  call.callee_party = m.called_party;
  call.caller_vc = {0, *caller_vci};
  call.callee_vc = {0, *callee_vci};
  call.pcr = m.pcr_cells_per_second;
  call.scr = m.scr_cells_per_second;
  call.weight = std::max<std::uint16_t>(m.weight, 1);
  call.abr = m.abr;
  call.created = bed_.sim().now();
  cac_commit(call);
  calls_.emplace(m.call_id, call);
  ensure_audit_timer();

  Message fwd = m;
  fwd.assigned_vc = call.callee_vc;
  send_to_port(callee->port, fwd);
}

void SignalingNetwork::program_routes(const AgentCall& call) {
  sw_.add_route(call.caller_port, call.caller_vc, call.callee_port,
                call.callee_vc, call.weight, call.abr);
  sw_.add_route(call.callee_port, call.callee_vc, call.caller_port,
                call.caller_vc, call.weight, call.abr);
  if (call.scr > 0.0 && call.pcr > 0.0) {
    // VBR contract: two-rate trTCM meter (CIR = SCR, PIR = PCR) —
    // sustained-rate excess is tagged CLP, peak-rate excess dropped.
    atm::TrTcmConfig meter;
    meter.cir_cells_per_second = call.scr;
    meter.pir_cells_per_second = call.pcr;
    meter.cbs_cells = config_.meter_cbs_cells;
    meter.pbs_cells = config_.meter_pbs_cells;
    sw_.add_meter(call.caller_port, call.caller_vc, meter);
    sw_.add_meter(call.callee_port, call.callee_vc, meter);
  } else if (call.pcr > 0.0) {
    const sim::Time cdvt = static_cast<sim::Time>(
        config_.police_cdvt_slots *
        static_cast<double>(sw_.config().port_rate.cell_slot()));
    sw_.add_policer(call.caller_port, call.caller_vc, call.pcr, cdvt,
                    net::Switch::PoliceAction::kDrop);
    sw_.add_policer(call.callee_port, call.callee_vc, call.pcr, cdvt,
                    net::Switch::PoliceAction::kDrop);
  }
}

void SignalingNetwork::remove_routes(const AgentCall& call) {
  sw_.remove_route(call.caller_port, call.caller_vc);
  sw_.remove_route(call.callee_port, call.callee_vc);
}

void SignalingNetwork::handle_connect(const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) return;
  AgentCall& call = it->second;
  if (!call.routed) {
    program_routes(call);
    call.routed = true;
    call.strikes = 0;
    calls_routed_.add();
  }
  // Duplicate CONNECTs still answer the caller: its copy may be the
  // one that was lost.
  Message fwd = m;
  fwd.assigned_vc = call.caller_vc;
  send_to_port(call.caller_port, fwd);
}

void SignalingNetwork::handle_release(std::size_t from_port,
                                      const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) {
    // Retransmitted RELEASE for a call already completed: confirm
    // directly or the endpoint's T308 runs to exhaustion.
    Message rc;
    rc.type = MessageType::kReleaseComplete;
    rc.call_id = m.call_id;
    rc.calling_party = m.calling_party;
    rc.cause = m.cause;
    send_to_port(from_port, rc);
    return;
  }
  AgentCall& call = it->second;
  if (call.routed) {
    remove_routes(call);
    call.routed = false;
  }
  // Relay to the peer leg; on its RELEASE COMPLETE we finish cleanup.
  const std::size_t peer_port = from_port == call.caller_port
                                    ? call.callee_port
                                    : call.caller_port;
  send_to_port(peer_port, m);
}

void SignalingNetwork::handle_release_complete(const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) return;
  AgentCall call = it->second;
  calls_.erase(it);
  cac_release(call);
  free_vci(call.caller_port, call.caller_vc.vci);
  free_vci(call.callee_port, call.callee_vc.vci);
  // Forward the completion to the release initiator: it is the leg that
  // has not answered with RELEASE COMPLETE itself. The initiator's
  // address rode in the message.
  const std::size_t to_port = m.calling_party == call.caller_party
                                  ? call.callee_port
                                  : call.caller_port;
  send_to_port(to_port, m);
}

// --- status audit -----------------------------------------------------

void SignalingNetwork::handle_status(const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) return;
  AgentCall& call = it->second;
  if (call.enquiries_outstanding > 0) --call.enquiries_outstanding;
  if (m.call_state == CallState::kNull) {
    // An endpoint no longer knows a call we still carry: its state is
    // authoritative (it owns the VC); reclaim ours.
    reclaim_call(m.call_id, Cause::kTemporaryFailure);
    return;
  }
  // Only a fully answered round clears suspicion — resetting on the
  // first reply would let one live leg mask a dead one forever.
  if (call.enquiries_outstanding == 0) call.strikes = 0;
}

void SignalingNetwork::ensure_audit_timer() {
  // Armed only while there is something to audit, so a quiescent
  // network leaves the event queue empty (sim.run() terminates).
  if (audit_armed_ || config_.audit_period <= 0 || calls_.empty()) return;
  audit_armed_ = true;
  bed_.sim().after(config_.audit_period, [this] { audit_tick(); });
}

void SignalingNetwork::audit_tick() {
  audit_armed_ = false;
  audit_ticks_.add();
  const sim::Time now = bed_.sim().now();

  std::vector<std::uint32_t> ids;
  ids.reserve(calls_.size());
  for (const auto& [id, call] : calls_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  std::vector<std::uint32_t> to_reclaim;
  for (const std::uint32_t id : ids) {
    AgentCall& call = calls_.at(id);
    // Grace period: a call younger than one audit round is still mid-
    // handshake by design.
    if (now - call.created < config_.audit_period) continue;
    if (!call.routed) {
      // Half-open far beyond any handshake latency: a lost message the
      // endpoint timers failed to repair (or recovery is off there).
      if (++call.strikes >= config_.audit_strikes) to_reclaim.push_back(id);
      continue;
    }
    if (call.enquiries_outstanding > 0 &&
        ++call.strikes >= config_.audit_strikes) {
      // Both legs have ignored enquiries for several rounds.
      to_reclaim.push_back(id);
      continue;
    }
    // Verify both legs still know the call.
    call.enquiries_outstanding = 2;
    enquiries_.add(2);
    Message enq;
    enq.type = MessageType::kStatusEnquiry;
    enq.call_id = id;
    send_to_port(call.caller_port, enq);
    send_to_port(call.callee_port, enq);
  }
  for (const std::uint32_t id : to_reclaim) {
    reclaim_call(id, Cause::kRecoveryOnTimerExpiry);
  }
  reconcile_routes();
  ensure_audit_timer();
}

void SignalingNetwork::reclaim_call(std::uint32_t call_id, Cause cause) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  AgentCall call = it->second;
  calls_.erase(it);
  cac_release(call);
  if (call.routed) {
    remove_routes(call);
    routes_reclaimed_.add(2);
  }
  free_vci(call.caller_port, call.caller_vc.vci);
  free_vci(call.callee_port, call.callee_vc.vci);
  vcis_reclaimed_.add(2);
  calls_reclaimed_.add();
  trace(sim::TraceEventId::kSigVcReclaimed,
        static_cast<std::uint32_t>(call.caller_port), call.caller_vc.vci,
        call_id);
  trace(sim::TraceEventId::kSigVcReclaimed,
        static_cast<std::uint32_t>(call.callee_port), call.callee_vc.vci,
        call_id);
  // Tell both endpoints to clear whatever they still hold. RELEASE for
  // an unknown call is harmless (confirmed and forgotten).
  Message rel;
  rel.type = MessageType::kRelease;
  rel.call_id = call_id;
  rel.cause = cause;
  send_to_port(call.caller_port, rel);
  send_to_port(call.callee_port, rel);
}

bool SignalingNetwork::owns_route(std::size_t in_port, atm::VcId vc) const {
  for (const auto& [id, call] : calls_) {
    if ((call.caller_port == in_port && call.caller_vc == vc) ||
        (call.callee_port == in_port && call.callee_vc == vc)) {
      return true;
    }
  }
  return false;
}

void SignalingNetwork::reconcile_routes() {
  // Any data route no active call owns is debris (typically post-crash:
  // the call table died but the fabric kept forwarding). Collect, sort
  // for determinism, remove. VCIs are not freed here — the allocator
  // state is reconciled by the call-table paths, not the fabric sweep.
  std::vector<std::pair<std::size_t, std::uint16_t>> stale;
  sw_.for_each_route([this, &stale](std::size_t in_port, atm::VcId vc,
                                    std::size_t, atm::VcId) {
    if (in_port == agent_port_) return;
    if (vc.vpi != 0 || vc.vci < config_.first_data_vci) return;
    if (owns_route(in_port, vc)) return;
    stale.emplace_back(in_port, vc.vci);
  });
  std::sort(stale.begin(), stale.end());
  for (const auto& [port, vci] : stale) {
    sw_.remove_route(port, atm::VcId{0, vci});
    routes_reclaimed_.add();
  }
}

// --- restart ----------------------------------------------------------

void SignalingNetwork::crash_restart() {
  // The agent process dies and restarts: volatile state (call table,
  // VCI allocators, pending audits) is gone. Routes in the fabric and
  // endpoint call state survived and must be reconciled.
  calls_.clear();
  free_vcis_.clear();
  // The CAC books are volatile too: with no calls there is no committed
  // capacity, and re-admission rebuilds them from live SETUPs.
  committed_pcr_.clear();
  for (const auto& e : endpoints_) {
    next_vci_[e.port] = config_.first_data_vci;
  }
  ++restart_instance_;
  reconcile_routes();
  std::vector<std::size_t> ports;
  ports.reserve(endpoints_.size());
  for (const auto& e : endpoints_) ports.push_back(e.port);
  std::sort(ports.begin(), ports.end());
  for (const std::size_t port : ports) {
    RestartState& rs = restarts_[port];
    bed_.sim().cancel(rs.timer);
    rs.pending = true;
    rs.attempts = 0;
    send_restart(port);
  }
}

void SignalingNetwork::send_restart(std::size_t port) {
  RestartState& rs = restarts_[port];
  if (!rs.pending) return;
  if (rs.attempts > config_.t316_retries) {
    // Endpoint unreachable; give up (the audit keeps the fabric clean).
    rs.pending = false;
    return;
  }
  ++rs.attempts;
  restarts_sent_.add();
  trace(sim::TraceEventId::kSigRestart, static_cast<std::uint32_t>(port),
        rs.attempts, restart_instance_);
  Message m;
  m.type = MessageType::kRestart;
  m.call_id = restart_instance_;
  send_to_port(port, m);
  rs.timer = bed_.sim().after(config_.t316, [this, port] {
    auto it = restarts_.find(port);
    if (it == restarts_.end() || !it->second.pending) return;
    trace(sim::TraceEventId::kSigTimerExpiry, 316, 0, port);
    send_restart(port);
  });
}

void SignalingNetwork::handle_restart_ack(std::size_t from_port) {
  auto it = restarts_.find(from_port);
  if (it == restarts_.end() || !it->second.pending) return;
  it->second.pending = false;
  bed_.sim().cancel(it->second.timer);
  restart_acks_.add();
}

// --- invariants -------------------------------------------------------

std::size_t SignalingNetwork::stranded_vcis() const {
  std::size_t stranded = 0;
  for (const auto& e : endpoints_) {
    const auto nit = next_vci_.find(e.port);
    const std::uint16_t next =
        nit == next_vci_.end() ? config_.first_data_vci : nit->second;
    const auto fit = free_vcis_.find(e.port);
    for (std::uint16_t vci = config_.first_data_vci; vci < next; ++vci) {
      if (fit != free_vcis_.end() &&
          std::find(fit->second.begin(), fit->second.end(), vci) !=
              fit->second.end()) {
        continue;
      }
      if (owns_route(e.port, atm::VcId{0, vci})) continue;
      ++stranded;
    }
  }
  return stranded;
}

std::size_t SignalingNetwork::stranded_routes() const {
  std::size_t stale = 0;
  sw_.for_each_route([this, &stale](std::size_t in_port, atm::VcId vc,
                                    std::size_t, atm::VcId) {
    if (in_port == agent_port_) return;
    if (vc.vpi != 0 || vc.vci < config_.first_data_vci) return;
    if (!owns_route(in_port, vc)) ++stale;
  });
  return stale;
}

void SignalingNetwork::audit_invariants(core::InvariantAuditor& auditor) {
  // Every allocated VCI is owned by exactly one active call or sits on
  // the free list.
  for (const auto& e : endpoints_) {
    const auto nit = next_vci_.find(e.port);
    const std::uint64_t allocated =
        nit == next_vci_.end()
            ? 0
            : static_cast<std::uint64_t>(nit->second - config_.first_data_vci);
    const auto fit = free_vcis_.find(e.port);
    const std::uint64_t free_count =
        fit == free_vcis_.end() ? 0 : fit->second.size();
    std::uint64_t legs = 0;
    for (const auto& [id, call] : calls_) {
      if (call.caller_port == e.port) ++legs;
      if (call.callee_port == e.port) ++legs;
    }
    auditor.expect_eq(allocated, free_count + legs, "sig vci conservation",
                      "port " + std::to_string(e.port) +
                          ": allocated == free + active call legs");
  }
  // The switch carries exactly two data routes per routed call.
  std::uint64_t routed = 0;
  for (const auto& [id, call] : calls_) {
    if (call.routed) ++routed;
  }
  std::uint64_t data_routes = 0;
  sw_.for_each_route([this, &data_routes](std::size_t in_port, atm::VcId vc,
                                          std::size_t, atm::VcId) {
    if (in_port == agent_port_) return;
    if (vc.vpi != 0 || vc.vci < config_.first_data_vci) return;
    ++data_routes;
  });
  auditor.expect_eq(data_routes, 2 * routed, "sig route ownership",
                    "switch data routes == 2 x routed calls");
  // CAC books balance: the committed capacity per port equals the sum
  // of the PCRs of the admitted calls with a leg there — nothing leaks
  // when calls release, reclaim or the agent restarts. Compared at
  // whole-cells/s granularity to shrug off float summation order.
  for (const auto& e : endpoints_) {
    double expected = 0.0;
    for (const auto& [id, call] : calls_) {
      if (!call.cac_committed) continue;
      if (call.caller_port == e.port) expected += call.pcr;
      if (call.callee_port == e.port) expected += call.pcr;
    }
    auditor.expect_eq(
        static_cast<std::uint64_t>(std::llround(committed_pcr(e.port))),
        static_cast<std::uint64_t>(std::llround(expected)),
        "sig cac books",
        "port " + std::to_string(e.port) +
            ": committed PCR == sum of admitted call legs");
  }
  // Each endpoint's NIC table matches its call-control state.
  for (const auto& control : controls_) {
    control->audit_invariants(auditor);
  }
}

}  // namespace hni::sig
