// Signalling messages — a deliberately small Q.2931-flavoured protocol.
//
// ATM is out-of-band signalled: connection control rides its own VC
// (VPI 0 / VCI 5 at the UNI), carried here as AAL5 frames. The message
// set is the call-control vocabulary plus the recovery vocabulary that
// makes the protocol survivable over a lossy substrate:
//
//   SETUP            caller -> network -> callee   (open a call)
//   CONNECT          callee -> network -> caller   (accept; VC assigned)
//   RELEASE          either -> network -> peer     (tear down)
//   RELEASE COMPLETE peer   -> network -> either   (teardown confirmed)
//   STATUS ENQUIRY   network -> endpoint           (audit: "do you still
//                                                   know call X?")
//   STATUS           endpoint -> network           (reply: my state for X)
//   RESTART          network -> endpoint           (agent lost its call
//                                                   state; clear everything)
//   RESTART ACK      endpoint -> network           (cleared)
//
// Simplifications vs. the real stack, documented per DESIGN.md: no
// SSCOP assured-mode layer underneath — instead the call-control layer
// carries its own Q.2931-style timers (T303/T308/T310/T316) and the
// agent runs a periodic status audit, which is how the protocol earns
// loss tolerance. Addresses are 16-bit party numbers instead of
// NSAP/E.164, and the traffic descriptor is a PCR plus an optional SCR
// (the VBR sustained rate that selects trTCM metering at the switch),
// a scheduling weight, and an ABR flag. The wire
// format is explicit little-endian serialization with a magic/length
// guard; malformed frames are rejected with a diagnostic Cause, never
// thrown on and never misparsed.

#pragma once

#include <cstdint>
#include <optional>

#include "aal/types.hpp"
#include "atm/cell.hpp"

namespace hni::sig {

/// The well-known signalling channel at the UNI.
inline constexpr atm::VcId kSignalingVc{0, 5};

enum class MessageType : std::uint8_t {
  kSetup = 1,
  kConnect = 2,
  kRelease = 3,
  kReleaseComplete = 4,
  kStatusEnquiry = 5,
  kStatus = 6,
  kRestart = 7,
  kRestartAck = 8,
};

/// Cause codes carried in RELEASE/STATUS (a small subset of Q.850).
enum class Cause : std::uint8_t {
  kNormal = 16,
  kUserBusy = 17,
  kNoRouteToDestination = 3,
  kCallRejected = 21,
  kDestinationOutOfOrder = 27,     // endpoint defect report (AIS / LOC)
  kNetworkOutOfVcs = 35,
  kTemporaryFailure = 41,          // agent restart / stale call cleared
  kResourceUnavailable = 47,       // CAC: committed capacity exhausted
  kInvalidMessage = 95,            // bad magic / truncated / wrong length
  kMessageTypeNonExistent = 97,    // frame valid, type unknown
  kInvalidContents = 100,          // known type, out-of-range field
  kRecoveryOnTimerExpiry = 102,    // T303/T308/T310 gave up, or audit reclaim
};

/// Endpoint call state as reported in STATUS (Q.2931 call-state IE,
/// collapsed to the four states this protocol distinguishes).
enum class CallState : std::uint8_t {
  kNull = 0,       // no such call here
  kCalling = 1,    // SETUP sent, awaiting CONNECT
  kConnected = 2,  // active
  kReleasing = 3,  // RELEASE sent, awaiting RELEASE COMPLETE
};

struct Message {
  MessageType type = MessageType::kSetup;
  std::uint32_t call_id = 0;      // caller-chosen call reference
  std::uint16_t calling_party = 0;
  std::uint16_t called_party = 0;
  aal::AalType aal = aal::AalType::kAal5;
  double pcr_cells_per_second = 0.0;  // 0 = best effort (no shaping/UPC)
  /// Sustained cell rate. 0 = CBR-style single-rate contract (GCRA
  /// policing at the PCR); > 0 selects a two-rate trTCM meter at the
  /// switch (CIR = SCR, PIR = PCR). Must not exceed the PCR.
  double scr_cells_per_second = 0.0;
  /// DWRR scheduling weight at switch output queues (clamped >= 1).
  std::uint16_t weight = 1;
  /// ABR service class: the switch's ERICA loop measures this VC and
  /// stamps explicit rates into its backward RM cells.
  bool abr = false;
  atm::VcId assigned_vc{};        // filled by the network on CONNECT
  Cause cause = Cause::kNormal;   // meaningful in RELEASE*/STATUS
  CallState call_state = CallState::kNull;  // meaningful in STATUS

  aal::Bytes encode() const;
  static std::optional<Message> decode(const aal::Bytes& bytes);
};

/// Diagnosed decode: either a valid message, or the Cause a conforming
/// implementation would report (never throws, regardless of input).
/// When the frame guard held but the body was rejected, `call_id_hint`
/// carries the call reference so the receiver can answer with STATUS.
struct DecodeResult {
  std::optional<Message> message;
  Cause error = Cause::kNormal;      // meaningful when !message
  std::uint32_t call_id_hint = 0;    // 0 when the header was unreadable
};
DecodeResult decode_checked(const aal::Bytes& bytes);

std::string_view to_string(MessageType type);
std::string_view to_string(Cause cause);
std::string_view to_string(CallState state);

}  // namespace hni::sig
