// Signalling messages — a deliberately small Q.2931-flavoured protocol.
//
// ATM is out-of-band signalled: connection control rides its own VC
// (VPI 0 / VCI 5 at the UNI), carried here as AAL5 frames. The message
// set is the minimal call-control vocabulary:
//
//   SETUP            caller -> network -> callee   (open a call)
//   CONNECT          callee -> network -> caller   (accept; VC assigned)
//   RELEASE          either -> network -> peer     (tear down)
//   RELEASE COMPLETE peer   -> network -> either   (teardown confirmed)
//
// Simplifications vs. the real stack, documented per DESIGN.md: no
// SSCOP assured-mode layer underneath (our signalling VC is clean),
// addresses are 16-bit party numbers instead of NSAP/E.164, and the
// traffic descriptor carries only a PCR. The wire format is explicit
// little-endian serialization with a magic/length guard, so malformed
// frames are rejected rather than misparsed.

#pragma once

#include <cstdint>
#include <optional>

#include "aal/types.hpp"
#include "atm/cell.hpp"

namespace hni::sig {

/// The well-known signalling channel at the UNI.
inline constexpr atm::VcId kSignalingVc{0, 5};

enum class MessageType : std::uint8_t {
  kSetup = 1,
  kConnect = 2,
  kRelease = 3,
  kReleaseComplete = 4,
};

/// Cause codes carried in RELEASE (a small subset of Q.850).
enum class Cause : std::uint8_t {
  kNormal = 16,
  kUserBusy = 17,
  kNoRouteToDestination = 3,
  kCallRejected = 21,
  kNetworkOutOfVcs = 35,
};

struct Message {
  MessageType type = MessageType::kSetup;
  std::uint32_t call_id = 0;      // caller-chosen call reference
  std::uint16_t calling_party = 0;
  std::uint16_t called_party = 0;
  aal::AalType aal = aal::AalType::kAal5;
  double pcr_cells_per_second = 0.0;  // 0 = best effort (no shaping/UPC)
  atm::VcId assigned_vc{};        // filled by the network on CONNECT
  Cause cause = Cause::kNormal;   // meaningful in RELEASE*

  aal::Bytes encode() const;
  static std::optional<Message> decode(const aal::Bytes& bytes);
};

std::string_view to_string(MessageType type);
std::string_view to_string(Cause cause);

}  // namespace hni::sig
