#include "nic/rx_path.hpp"

#include <utility>

#include "aal/aal34.hpp"

namespace hni::nic {

RxPath::RxPath(sim::Simulator& sim, bus::Bus& bus, bus::HostMemory& memory,
               const proc::FirmwareProfile& firmware, RxPathConfig config)
    : sim_(sim),
      memory_(memory),
      dma_(bus, memory, config.dma),
      firmware_(firmware),
      config_(config),
      profiler_(config.engine.clock_hz),
      engine_(sim, config.engine),
      fifo_(sim, config.fifo_cells),
      board_(sim, config.board),
      vcs_(config.vc_buckets),
      interrupts_(sim, config.interrupt_coalesce) {
  ph_arrival_ = profiler_.phase("cell arrival + VC lookup");
  ph_append_ = profiler_.phase("buffer append / reassembly");
  ph_crc_ = profiler_.phase("payload CRC (software)");
  ph_oam_ = profiler_.phase("OAM cell handling");
  ph_deliver_ = profiler_.phase("PDU delivery");
  ph_dma_wait_ = profiler_.phase("landing DMA wait (overlapped)");
  engine_.set_profiler(&profiler_);
  fifo_.set_on_push([this] { service(); });
  alloc_ = [this](std::size_t bytes) -> std::optional<bus::SgList> {
    if (memory_.pages_free() * memory_.page_bytes() < bytes) {
      return std::nullopt;
    }
    return memory_.alloc(bytes);
  };
  release_ = [this](const bus::SgList& sg) { memory_.free(sg); };
  if (config_.reassembly_timeout > 0) {
    sim_.after(config_.reassembly_timeout, [this] { sweep_stale_pdus(); });
  }
  if (config_.watchdog_interval > 0) {
    watchdog_ = std::make_unique<Watchdog>(
        sim_, config_.watchdog_interval,
        [this] { return serviced_.value(); },
        [this] { return !fifo_.empty(); },
        [this] { reset_engine(); });
  }
  interrupts_.set_handler([this](std::size_t batch) {
    // One interrupt covers `batch` PDU completions; hand them all up.
    std::vector<RxDelivery> ready = std::move(pending_deliveries_);
    pending_deliveries_.clear();
    for (std::size_t i = 0; i < ready.size(); ++i) {
      ready[i].interrupt_batch = batch;
      ready[i].first_of_batch = (i == 0);
      if (deliver_) deliver_(std::move(ready[i]));
    }
  });
}

void RxPath::open_vc(atm::VcId vc, aal::AalType aal) {
  VcState state;
  state.aal = aal;
  state.reasm = std::make_unique<aal::FrameReassembler>(
      aal, aal::FrameReassembler::Config(config_.max_sdu));
  vcs_.insert(vc, std::move(state));
  if (auto found = vcs_.find(vc); found.state != nullptr) {
    attach_vc_metrics(vc, *found.state);
  }
}

void RxPath::attach_vc_metrics(atm::VcId vc, VcState& vs) {
  if (!metrics_) return;
  const sim::MetricScope scope = metrics_->vc(vc.vpi, vc.vci);
  vs.m_cells = &scope.counter("cells");
  vs.m_pdus = &scope.counter("pdus");
  vs.m_efci = &scope.counter("cells_efci_marked");
}

void RxPath::register_metrics(const sim::MetricScope& scope) {
  metrics_ = scope;
  scope.expose("cells_received", cells_in_);
  scope.expose("cells_hec_discarded", hec_discard_);
  scope.expose("cells_hec_corrected", hec_corrected_);
  scope.expose("cells_no_vc", no_vc_);
  scope.expose("cells_serviced", serviced_);
  scope.expose("cells_flushed", flushed_);
  scope.expose("pdus_delivered", pdus_ok_);
  scope.expose("pdus_errored", pdus_err_);
  scope.expose("pdus_dropped_board", board_drop_);
  scope.expose("pdus_dropped_host_buffers", host_buffer_drop_);
  scope.expose("pdus_dropped_dma", dma_drop_);
  scope.expose("pdus_timed_out", timeouts_);
  scope.expose("pdus_aborted", aborted_);
  scope.expose("oam_cells", oam_cells_);
  scope.expose("oam_cells_bad", oam_bad_);
  scope.expose("cells_efci_marked", efci_marked_);
  scope.expose("rm_cells", rm_cells_);
  scope.expose_stat("pdu_latency_us", latency_us_);
  scope.gauge("board_containers_in_use",
              [this] { return static_cast<double>(board_.containers_in_use()); });
  scope.gauge("board_alloc_failures",
              [this] { return static_cast<double>(board_.alloc_failures()); });
  scope.gauge("interrupts",
              [this] { return static_cast<double>(interrupts_.interrupts()); });
  engine_.register_metrics(scope.sub("engine"));
  fifo_.register_metrics(scope.sub("fifo"));
  dma_.register_metrics(scope.sub("dma"));
  vcs_.for_each([this](atm::VcId vc, VcState& vs) {
    attach_vc_metrics(vc, vs);
  });
}

void RxPath::close_vc(atm::VcId vc) {
  board_.release(chain_key(vc));
  vcs_.erase(vc);
}

void RxPath::receive_wire(const net::WireCell& wire) {
  cells_in_.add();
  auto bytes = wire.bytes;  // mutable copy: HEC may correct a bit
  auto header = std::span<std::uint8_t, 4>(bytes.data(), 4);
  const auto verdict = hec_.push(header, bytes[4]);
  if (verdict == atm::HecVerdict::kDiscard) {
    hec_discard_.add();
    return;
  }
  if (verdict == atm::HecVerdict::kCorrected) hec_corrected_.add();

  atm::Cell cell = atm::Cell::deserialize(
      std::span<const std::uint8_t, atm::kCellSize>(bytes.data(),
                                                    atm::kCellSize),
      atm::HeaderFormat::kUni);
  cell.meta = wire.meta;
  if (!atm::pti_is_user_data(cell.header.pti)) {
    // OAM/control cells take the priority lane: they jump the queue so
    // fault management survives a FIFO full of user data. A drop here
    // is counted separately (priority_drops) — losing an alarm is a
    // different failure than shedding load.
    fifo_.push_front(std::move(cell));
    return;
  }
  fifo_.push(std::move(cell));  // drop counted by the FIFO when full
}

bool RxPath::is_last_cell(const atm::Cell& cell, aal::AalType aal) {
  if (aal == aal::AalType::kAal5) return atm::pti_auu(cell.header.pti);
  const auto st = static_cast<aal::SegmentType>(cell.payload[0] >> 6);
  return st == aal::SegmentType::kEom || st == aal::SegmentType::kSsm;
}

void RxPath::unwedge_engine() {
  if (!wedged_) return;
  wedged_ = false;
  service();
}

void RxPath::reset_engine() {
  // Hardware abort: the engine restarts from a clean state. Cells still
  // in the FIFO belong to interrupted streams — discard them.
  wedged_ = false;
  while (fifo_.pop()) flushed_.add();
  // Reclaim the containers of every interrupted reassembly and reset
  // the streams so the next first cell starts a fresh PDU.
  vcs_.for_each([this](atm::VcId vc, VcState& state) {
    if (!state.reasm->mid_pdu()) return;
    aborted_.add();
    board_.release(chain_key(vc));
    state.reasm->reset();
  });
  service();
}

void RxPath::service() {
  if (engine_busy_ || wedged_) return;
  std::optional<atm::Cell> cell = fifo_.pop();
  if (!cell) return;
  serviced_.add();
  engine_busy_ = true;

  auto found = vcs_.find(cell->header.vc);
  if (found.state == nullptr) {
    // Unknown VC: the engine still pays arrival + lookup to find out.
    no_vc_.add();
    const std::uint32_t instr = rx_cell_instructions(
        firmware_, aal::AalType::kAal5, proc::CellPosition{false, false},
        found.extra_probes);
    engine_.execute(ph_arrival_, instr, [this] {
      engine_busy_ = false;
      service();
    });
    return;
  }

  VcState& state = *found.state;

  // Any cell on a known VC proves the connection is alive — the
  // continuity-check sink resets its loss-of-continuity clock on this.
  if (activity_observer_) activity_observer_(cell->header.vc);

  // Resource-management cells: congestion feedback, neither OAM nor
  // reassembly. Charged like an OAM cell (same control-plane budget).
  if (cell->header.pti == atm::Pti::kResourceMgmt) {
    atm::Cell c = std::move(*cell);
    engine_.execute(ph_oam_, firmware_.rx.oam_cell, [this, c = std::move(c)] {
      rm_cells_.add();
      if (rm_handler_) rm_handler_(c.header.vc, c);
      engine_busy_ = false;
      service();
    });
    return;
  }

  // OAM cells: fault-management handling, no reassembly involvement.
  if (!atm::pti_is_user_data(cell->header.pti)) {
    atm::Cell c = std::move(*cell);
    engine_.execute(ph_oam_, firmware_.rx.oam_cell, [this, c = std::move(c)] {
      oam_cells_.add();
      if (auto oam = atm::OamCell::parse(c)) {
        if (oam_handler_) oam_handler_(c.header.vc, *oam);
      } else {
        oam_bad_.add();
      }
      engine_busy_ = false;
      service();
    });
    return;
  }

  const proc::CellPosition pos{is_first_cell(*cell, state),
                               is_last_cell(*cell, state.aal)};
  const std::uint32_t instr = rx_cell_instructions(
      firmware_, state.aal, pos, found.extra_probes);
  // One engine occupancy, three budget lines: arrival + VC lookup, the
  // software-CRC share (zero with the offload), append/reassembly rest.
  const std::uint32_t arrival_instr =
      firmware_.rx.cell_arrival +
      rx_cell_lookup_instructions(firmware_, found.extra_probes);
  const std::uint32_t crc_instr =
      rx_cell_crc_instructions(firmware_, state.aal);
  profiler_.add(ph_arrival_, engine_.cost(arrival_instr));
  profiler_.add(ph_append_, engine_.cost(instr - arrival_instr - crc_instr));
  if (crc_instr > 0) profiler_.add(ph_crc_, engine_.cost(crc_instr));
  atm::Cell c = std::move(*cell);
  engine_.execute(instr, [this, c = std::move(c)]() mutable {
    // Re-find the state: the VC table may have changed while the engine
    // worked (close_vc mid-flight).
    auto f = vcs_.find(c.header.vc);
    if (f.state == nullptr) {
      no_vc_.add();
      engine_busy_ = false;
      service();
      return;
    }
    process_cell(std::move(c), *f.state);
  });
}

bool RxPath::is_first_cell(const atm::Cell& cell, const VcState& state) {
  if (state.aal == aal::AalType::kAal5) return !state.reasm->mid_pdu();
  const auto st = static_cast<aal::SegmentType>(cell.payload[0] >> 6);
  return st == aal::SegmentType::kBom || st == aal::SegmentType::kSsm;
}

void RxPath::sweep_stale_pdus() {
  const sim::Time now = sim_.now();
  vcs_.for_each([&](atm::VcId vc, VcState& state) {
    if (!state.reasm->mid_pdu()) return;
    if (now - state.last_activity < config_.reassembly_timeout) return;
    // A PDU went quiet mid-assembly (lost final cell, dead sender):
    // reclaim its containers and reset the stream.
    timeouts_.add();
    board_.release(chain_key(vc));
    state.reasm->reset();
  });
  sim_.after(config_.reassembly_timeout, [this] { sweep_stale_pdus(); });
}

void RxPath::process_cell(atm::Cell cell, VcState& state) {
  const atm::VcId vc = cell.header.vc;
  state.last_activity = sim_.now();
  if (state.m_cells) state.m_cells->add();

  // EFCI: a congested queue upstream marked this cell. Count it and
  // tell the congestion controller before reassembly touches the cell.
  if (atm::pti_efci(cell.header.pti)) {
    efci_marked_.add();
    if (state.m_efci) state.m_efci->add();
    if (efci_observer_) efci_observer_(vc);
  }

  // Board memory accounting: one cell appended to this VC's chain.
  if (!board_.add_cell(chain_key(vc))) {
    // Pool exhausted: the in-progress PDU on this VC is abandoned.
    board_drop_.add();
    board_.release(chain_key(vc));
    state.reasm->reset();
    engine_busy_ = false;
    service();
    return;
  }

  std::optional<aal::FrameDelivery> done = state.reasm->push(cell);
  if (!done) {
    engine_busy_ = false;
    service();
    return;
  }
  complete_pdu(vc, state, std::move(*done));
}

void RxPath::complete_pdu(atm::VcId vc, VcState& state,
                          aal::FrameDelivery d) {
  board_.release(chain_key(vc));
  if (!d.ok()) {
    pdus_err_.add();
    error_counts_[static_cast<std::size_t>(d.error)].add();
    engine_busy_ = false;
    service();
    return;
  }

  // Registry-owned, so the pointer outlives the VcState even if the VC
  // closes while the landing DMA is in flight.
  sim::Counter* m_pdus = state.m_pdus;

  // Per-PDU delivery work, then the DMA to host memory. The engine is
  // free once the DMA is programmed; the transfer itself is hardware.
  engine_.execute(ph_deliver_, rx_pdu_instructions(firmware_),
                  [this, vc, m_pdus, d = std::move(d)]() mutable {
    std::optional<bus::SgList> sg = alloc_(d.sdu.size());
    if (!sg) {
      host_buffer_drop_.add();
      engine_busy_ = false;
      service();
      return;
    }
    const std::size_t len = d.sdu.size();
    const sim::Time first = d.first_cell_time;
    bus::SgList host_sg = *std::move(sg);
    // Engine moves on; DMA completes in the background.
    engine_busy_ = false;
    service();
    const sim::Time issued = sim_.now();
    dma_.write(host_sg, 0, std::move(d.sdu),
               [this, vc, m_pdus, host_sg, len, first, issued] {
                 profiler_.add(ph_dma_wait_, sim_.now() - issued);
                 RxDelivery out;
                 out.vc = vc;
                 out.sg = host_sg;
                 out.len = len;
                 out.first_cell_time = first;
                 out.delivered_time = sim_.now();
                 latency_us_.add(
                     sim::to_microseconds(out.delivered_time - first));
                 pdus_ok_.add();
                 if (m_pdus) m_pdus->add();
                 pending_deliveries_.push_back(std::move(out));
                 interrupts_.post();
               },
               [this, host_sg] {
                 // Landing DMA gave up: the reassembled PDU is lost and
                 // the host buffers go back where they came from.
                 dma_drop_.add();
                 if (release_) release_(host_sg);
               });
  });
}

}  // namespace hni::nic
