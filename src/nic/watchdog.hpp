// Progress watchdog for the interface's engines.
//
// Real host interfaces pair every autonomous engine with a watchdog:
// firmware that stops making progress (a wedged state machine, a FIFO
// whose consumer died) must be detected and reset by the board, not by
// the host noticing hours later. This watchdog samples a progress
// counter on a fixed interval; when two consecutive samples show
// pending work but no progress, it fires the reset action. Requiring
// work to be pending on the *previous* tick too keeps a burst of work
// that arrived just before a sample from being mistaken for a stall.
//
// The class is deliberately generic — probe callbacks supply "progress"
// and "work pending", the owner supplies the abort-and-reclaim reset —
// so the TX and RX paths share one implementation.

#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hni::nic {

class Watchdog {
 public:
  using Progress = std::function<std::uint64_t()>;
  using Pending = std::function<bool()>;
  using Reset = std::function<void()>;

  /// `interval` of 0 disables the watchdog entirely.
  Watchdog(sim::Simulator& sim, sim::Time interval, Progress progress,
           Pending pending, Reset reset)
      : sim_(sim),
        interval_(interval),
        progress_(std::move(progress)),
        pending_(std::move(pending)),
        reset_(std::move(reset)) {
    if (interval_ > 0) sim_.after(interval_, [this] { tick(); });
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  std::uint64_t resets() const { return resets_.value(); }
  sim::Time interval() const { return interval_; }

 private:
  void tick() {
    const std::uint64_t p = progress_();
    const bool pending = pending_();
    if (pending && pending_last_ && p == last_progress_) {
      resets_.add();
      reset_();
      // Re-sample: the reset itself makes progress (flushes, aborts).
      last_progress_ = progress_();
      pending_last_ = pending_();
    } else {
      last_progress_ = p;
      pending_last_ = pending;
    }
    sim_.after(interval_, [this] { tick(); });
  }

  sim::Simulator& sim_;
  sim::Time interval_;
  Progress progress_;
  Pending pending_;
  Reset reset_;
  std::uint64_t last_progress_ = 0;
  bool pending_last_ = false;
  sim::Counter resets_;
};

}  // namespace hni::nic
