// Transmit side of the host-network interface.
//
// The pipeline the paper lays out:
//
//   host driver --(descriptor ring)--> segmentation engine
//        |                                   |
//        +--- host memory ===(DMA, bus)===> board staging
//                                            |
//                              cell build (header template, AAL fields,
//                              CRC in hardware) --> TX cell FIFO
//                                            |
//                                     SONET framer (line rate)
//
// The host writes the SDU once; the board DMAs it across the bus once
// (whole-PDU staging by default, per-cell cut-through as an ablation),
// the engine walks it producing cells, and the framer drains the FIFO
// at line rate. When the FIFO fills, the engine stalls — transmit
// applies backpressure, it never drops.
//
// Two properties beyond the minimal pipeline:
//
//  * Staging is double-buffered: the next PDU's descriptor fetch and
//    DMA overlap the current PDU's cell emission, so the wire does not
//    idle across bus transfers.
//  * Emission is scheduled per VC with cell-level round-robin: PDUs on
//    different VCs interleave cell by cell (legal in ATM — cells of one
//    VC stay in order), so a small urgent PDU is not head-of-line
//    blocked behind a 64 kB transfer. A per-VC GCRA shaper can pace a
//    VC to its traffic contract (see atm/gcra.hpp); unshaped VCs share
//    the residual line rate round-robin.
//
// Costs charged to the engine come from proc::FirmwareProfile; the data
// path itself is functional (real cells with real CRCs come out).

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "aal/sar.hpp"
#include "atm/gcra.hpp"
#include "atm/phy.hpp"
#include "bus/dma.hpp"
#include "nic/fifo.hpp"
#include "nic/watchdog.hpp"
#include "proc/engine.hpp"
#include "proc/firmware.hpp"
#include "sim/flat_table.hpp"

namespace hni::nic {

/// One transmit request, as the driver posts it.
struct TxDescriptor {
  bus::SgList sg;                 // SDU bytes in host memory
  std::size_t len = 0;            // SDU length in octets
  atm::VcId vc;
  aal::AalType aal = aal::AalType::kAal5;
  bool clp = false;
  std::uint64_t cookie = 0;       // host correlation id
};

enum class TxDmaMode : std::uint8_t {
  kWholePdu,  // one S/G DMA stages the PDU in board memory (default)
  kPerCell,   // 48-octet DMA per cell (cut-through ablation)
};

struct TxPathConfig {
  proc::EngineConfig engine{"tx-engine", 25e6, 1.0};
  std::size_t ring_entries = 32;
  std::size_t fifo_cells = 64;
  std::size_t staged_pdus = 4;     // board staging slots (total)
  std::size_t staged_per_vc = 2;   // ...and per VC (fairness)
  std::size_t staging_concurrency = 2;  // staging DMAs in flight (the
                                        // bus arbitrates burst-wise)
  TxDmaMode dma_mode = TxDmaMode::kWholePdu;
  /// Staging DMA retry/backoff policy (max_retries = 0 disables
  /// recovery: one failed attempt aborts the PDU).
  bus::DmaConfig dma{};
  /// Oscillator offset in ppm; nullopt lets core::Testbed assign a
  /// realistic random value per station (+-50 ppm).
  std::optional<double> clock_ppm{};
  /// Watchdog sampling interval: a segmentation engine showing no
  /// progress across two samples while unblocked work waits is reset
  /// (unwedged and rescheduled). 0 disables the watchdog.
  sim::Time watchdog_interval = sim::milliseconds(10);
};

class TxPath {
 public:
  /// Fired when a descriptor's cells have all been handed to the framer
  /// FIFO and its host buffers may be reclaimed.
  using Completion = std::function<void(const TxDescriptor&)>;

  TxPath(sim::Simulator& sim, bus::Bus& bus, bus::HostMemory& memory,
         const proc::FirmwareProfile& firmware, TxPathConfig config,
         atm::LineRate line);

  /// Posts a descriptor; false when the ring is full.
  bool post(TxDescriptor descriptor);

  /// Queues a raw control cell (OAM, RM) for emission. Control cells
  /// take priority over user data and are never shaped.
  void inject_cell(atm::Cell cell);

  /// Paces `vc` to a peak cell rate (cells/second) with the given CDVT
  /// — the VC's traffic contract. Applies to cells emitted from now on.
  void set_shaper(atm::VcId vc, double pcr_cells_per_second,
                  sim::Time cdvt = 0);
  void clear_shaper(atm::VcId vc);
  /// Whether `vc` has a traffic contract (a set_shaper PCR) installed.
  bool has_contract(atm::VcId vc) const {
    const VcState* vs = vcs_.find(atm::vc_label(vc)).value;
    return vs != nullptr && vs->contract_pcr > 0.0;
  }

  /// Congestion throttle: scales `vc`'s emission rate to `factor` of
  /// its base rate (the contract PCR if one is set, the line's cell
  /// rate otherwise). 1.0 removes the throttle; values are clamped to
  /// [1/1024, 1]. Orthogonal to set_shaper — the contract survives and
  /// is re-applied when the factor returns to 1.
  void set_rate_factor(atm::VcId vc, double factor);
  /// The current throttle factor (1.0 when none is installed).
  double rate_factor(atm::VcId vc) const {
    const VcState* vs = vcs_.find(atm::vc_label(vc)).value;
    return vs != nullptr ? vs->rate_factor : 1.0;
  }
  /// Whether a GCRA shaper is currently installed on `vc` — true while
  /// a contract or a sub-unity throttle is in force. A best-effort VC
  /// recovered to full rate must report false (the shaper is shed, not
  /// left pacing at ~line rate).
  bool vc_shaped(atm::VcId vc) const {
    const VcState* vs = vcs_.find(atm::vc_label(vc)).value;
    return vs != nullptr && vs->shaper.has_value();
  }

  // --- fault management -------------------------------------------------
  /// Pauses `vc` (remote defect, e.g. an RDI alarm): already-staged
  /// PDUs hold their slots but stop emitting, and *new* posts for the
  /// VC are dropped with accounting rather than queued unboundedly into
  /// a dead connection (the completion callback still fires so the
  /// driver reclaims its buffers).
  void pause_vc(atm::VcId vc);
  void resume_vc(atm::VcId vc);
  bool vc_paused(atm::VcId vc) const;

  /// Wedges the segmentation/emission engine (fault hook); cleared by
  /// unwedge_engine() or a watchdog reset.
  void wedge_engine() { wedged_ = true; }
  void unwedge_engine();
  /// The staging DMA engine (fault hooks: fail_next / stall).
  bus::DmaEngine& dma() { return dma_; }
  const bus::DmaEngine& dma() const { return dma_; }
  std::uint64_t watchdog_resets() const {
    return watchdog_ ? watchdog_->resets() : 0;
  }

  void set_completion(Completion cb) { completion_ = std::move(cb); }

  /// The framer feeding the wire; callers attach its sink and start it.
  atm::TxFramer& framer() { return framer_; }

  /// Starts the framer slot clock.
  void start() { framer_.start(); }

  bool ring_full() const { return ring_.size() >= config_.ring_entries; }
  std::size_t ring_occupancy() const { return ring_.size(); }

  std::uint64_t pdus_sent() const { return pdus_.value(); }
  std::uint64_t cells_built() const { return cells_.value(); }
  /// PDUs abandoned because their staging or per-cell DMA gave up.
  std::uint64_t pdus_aborted() const { return aborted_.value(); }
  /// Posts dropped (with completion) because the VC was paused.
  std::uint64_t pdus_dropped_paused() const { return paused_drop_.value(); }
  const proc::Engine& engine() const { return engine_; }
  const CellFifo<atm::Cell>& fifo() const { return fifo_; }

  /// Per-phase cycle budget of the segmentation engine (header build,
  /// CRC, DMA wait, FIFO stall, …) — bench O1's TX table.
  const sim::CycleProfiler& profiler() const { return profiler_; }

  /// Surfaces the path's books (and per-VC counters for every VC seen
  /// from now on) under `scope`.
  void register_metrics(const sim::MetricScope& scope);

 private:
  /// A PDU staged on the board: bytes DMA'd, cells cut, ready to emit.
  struct StagedPdu {
    TxDescriptor descriptor;
    std::vector<atm::Cell> cells;
    std::size_t next = 0;  // next cell to emit
  };

  struct VcState {
    std::deque<StagedPdu> queue;
    std::optional<atm::Gcra> shaper;
    double contract_pcr = 0.0;     // traffic contract (0 = none)
    sim::Time contract_cdvt = 0;
    double rate_factor = 1.0;      // congestion throttle multiplier
    bool paused = false;  // remote defect: hold emission, shed posts
    // Per-VC instruments (registry-owned; null until metrics attach).
    sim::Counter* m_cells = nullptr;
    sim::Counter* m_pdus = nullptr;
  };

  void attach_vc_metrics(atm::VcId vc, VcState& vs);

  /// Rebuilds a VC's GCRA from its contract and throttle factor (an
  /// unthrottled, uncontracted VC runs unshaped).
  void apply_shaper(VcState& vs);

  /// Unblocked work exists (what the watchdog calls "pending"): control
  /// cells, or staged cells on a VC that is neither paused nor
  /// shaper-blocked right now.
  bool has_runnable_work() const;

  void maybe_stage_next();
  void stage_pdu(TxDescriptor descriptor);
  /// Emission scheduler: picks the next eligible VC round-robin and
  /// emits one cell; re-arms on FIFO space / shaper eligibility.
  void schedule_emission();
  void emit_one(atm::VcId vc);
  VcState& state_for(atm::VcId vc);
  /// Lookup for a VC known to exist (the rr_ rotation only holds VCs
  /// state_for has created; entries are never erased).
  VcState& vc_state(atm::VcId vc) {
    return *vcs_.find(atm::vc_label(vc)).value;
  }

  sim::Simulator& sim_;
  bus::HostMemory& memory_;
  bus::DmaEngine dma_;
  proc::FirmwareProfile firmware_;
  TxPathConfig config_;
  sim::CycleProfiler profiler_;
  proc::Engine engine_;
  CellFifo<atm::Cell> fifo_;
  atm::TxFramer framer_;
  std::deque<TxDescriptor> ring_;
  std::deque<atm::Cell> control_;  // OAM/RM cells awaiting emission

  // Per-VC emission state, keyed on the packed 32-bit VC label.
  // Arena-pooled: VcState addresses are stable across inserts, so the
  // emission path can hold a reference across engine callbacks.
  sim::FlatMap<std::uint32_t, VcState> vcs_;
  std::vector<atm::VcId> rr_;   // all VCs ever seen, rotation order
  std::size_t rr_pos_ = 0;
  std::size_t staged_count_ = 0;
  std::size_t staging_inflight_ = 0;
  std::unordered_set<atm::VcId> staging_vcs_;  // per-VC ordering guard
  bool emit_busy_ = false;
  bool fifo_wait_armed_ = false;
  sim::Time fifo_stall_since_ = 0;
  bool wedged_ = false;
  sim::EventHandle shaper_wakeup_;
  sim::Time shaper_wakeup_at_ = sim::kTimeNever;
  std::unique_ptr<Watchdog> watchdog_;

  // Cycle-budget phases (see profiler()).
  sim::CycleProfiler::PhaseId ph_fetch_;
  sim::CycleProfiler::PhaseId ph_dma_wait_;
  sim::CycleProfiler::PhaseId ph_trailer_;
  sim::CycleProfiler::PhaseId ph_header_;
  sim::CycleProfiler::PhaseId ph_crc_;
  sim::CycleProfiler::PhaseId ph_stall_;
  sim::CycleProfiler::PhaseId ph_complete_;
  std::optional<sim::MetricScope> metrics_;

  Completion completion_;
  std::uint64_t next_seq_ = 0;
  sim::Counter pdus_;
  sim::Counter cells_;
  sim::Counter aborted_;
  sim::Counter paused_drop_;
};

}  // namespace hni::nic
