// Bounded cell FIFO with occupancy instrumentation.
//
// The FIFOs decouple the line-rate datapath from the protocol engines:
// the RX FIFO absorbs back-to-back cell arrivals while the reassembly
// engine and the host bus catch up, and its overflow is the interface's
// cell-loss mechanism; the TX FIFO lets the segmentation engine run
// ahead of the framer. Occupancy statistics (time-average, maximum) and
// drop counts are first-class outputs — FIFO sizing is bench F3/A1.

#pragma once

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry/metrics.hpp"
#include "sim/trace.hpp"

namespace hni::nic {

// Storage is a preallocated ring over the (bounded) capacity rather
// than a deque: a deque allocates/frees a chunk every few cells as the
// window slides, which would be the last remaining per-cell allocation
// on the steady-state datapath (asserted by kernel_zeroalloc_test).
template <typename T>
class CellFifo {
 public:
  CellFifo(sim::Simulator& sim, std::size_t capacity)
      : sim_(sim), capacity_(capacity), buf_(capacity) {}

  /// Enqueues at the *front* (priority lane for control cells; the
  /// next pop returns it). Same capacity rules as push(), but a full
  /// FIFO counts the loss as a *priority* drop: an AIS/RDI cell
  /// vanishing must stay distinguishable from data loss.
  bool push_front(T item) {
    if (count_ >= capacity_) {
      priority_drops_.add();
      if (tracer_) {
        tracer_->emit({sim_.now(), sim::TraceEventId::kFifoPriorityDrop,
                       trace_source_,
                       static_cast<std::uint32_t>(count_), 0, 0});
      }
      return false;
    }
    pushes_.add();
    head_ = head_ == 0 ? capacity_ - 1 : head_ - 1;
    buf_[head_] = std::move(item);
    ++count_;
    depth_.set(sim_.now(), static_cast<double>(count_));
    if (on_push_) on_push_();
    return true;
  }

  /// Attempts to enqueue; returns false (and counts a drop) when full.
  bool push(T item) {
    if (count_ >= capacity_) {
      drops_.add();
      return false;
    }
    pushes_.add();
    buf_[wrap(head_ + count_)] = std::move(item);
    ++count_;
    depth_.set(sim_.now(), static_cast<double>(count_));
    if (on_push_) on_push_();
    return true;
  }

  /// Removes the oldest element, if any. At most one queued space
  /// waiter is released per pop.
  std::optional<T> pop() {
    if (count_ == 0) return std::nullopt;
    T item = std::move(buf_[head_]);
    head_ = wrap(head_ + 1);
    --count_;
    pops_.add();
    depth_.set(sim_.now(), static_cast<double>(count_));
    if (waiter_count_ > 0) {
      sim::Action cb = std::move(waiters_[waiter_head_]);
      waiter_head_ = wrap_waiter(waiter_head_ + 1);
      --waiter_count_;
      cb();
    }
    return item;
  }

  /// Callback fired on every successful push (consumer wake-up).
  void set_on_push(std::function<void()> cb) { on_push_ = std::move(cb); }

  /// Attaches a tracer: a refused priority-lane push emits
  /// kFifoPriorityDrop tagged with the interned `source`.
  void set_tracer(sim::Tracer* tracer, std::uint16_t source) {
    tracer_ = tracer;
    trace_source_ = source;
  }

  /// One-shot producer backpressure: `cb` fires after a future pop
  /// frees a slot (FIFO order among waiters). Waiters live in their own
  /// small ring: a line-rate producer arms one per cell, so a deque
  /// here would be a per-few-cells chunk allocation.
  void wait_space(sim::Action cb) {
    if (waiter_count_ == waiters_.size()) grow_waiters();
    waiters_[wrap_waiter(waiter_head_ + waiter_count_)] = std::move(cb);
    ++waiter_count_;
  }

  bool empty() const { return count_ == 0; }
  bool full() const { return count_ >= capacity_; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return capacity_; }

  /// Data cells (push) refused by a full FIFO.
  std::uint64_t drops() const { return drops_.value(); }
  /// Priority-lane cells (push_front: OAM/control) refused by a full
  /// FIFO — counted apart from data loss so alarms cannot vanish
  /// silently into the drop statistics.
  std::uint64_t priority_drops() const { return priority_drops_.value(); }
  /// Cells accepted / removed since construction. The conservation
  /// identity pushes() == pops() + size() is what the invariant auditor
  /// checks (in = out + dropped + resident, with drops counted at the
  /// offered side).
  std::uint64_t pushes() const { return pushes_.value(); }
  std::uint64_t pops() const { return pops_.value(); }
  double mean_depth() const { return depth_.mean(sim_.now()); }
  double max_depth() const { return depth_.max(); }

  /// Surfaces the FIFO's books under `scope` (".pushes", ".drops", …).
  void register_metrics(const sim::MetricScope& scope) const {
    scope.expose("pushes", pushes_);
    scope.expose("pops", pops_);
    scope.expose("drops", drops_);
    scope.expose("priority_drops", priority_drops_);
    scope.gauge("depth", [this] { return static_cast<double>(size()); });
    scope.gauge("depth_mean", [this] { return mean_depth(); });
    scope.gauge("depth_max", [this] { return max_depth(); });
  }

 private:
  std::size_t wrap(std::size_t i) const {
    return i >= capacity_ ? i - capacity_ : i;
  }
  std::size_t wrap_waiter(std::size_t i) const {
    return i >= waiters_.size() ? i - waiters_.size() : i;
  }

  void grow_waiters() {
    std::vector<sim::Action> bigger(
        waiters_.empty() ? 4 : waiters_.size() * 2);
    for (std::size_t i = 0; i < waiter_count_; ++i) {
      bigger[i] = std::move(waiters_[wrap_waiter(waiter_head_ + i)]);
    }
    waiters_ = std::move(bigger);
    waiter_head_ = 0;
  }

  sim::Simulator& sim_;
  std::size_t capacity_;
  std::vector<T> buf_;  // ring: [head_, head_ + count_)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  sim::Counter drops_;
  sim::Counter priority_drops_;
  sim::Counter pushes_;
  sim::Counter pops_;
  sim::TimeWeightedStat depth_;
  sim::Tracer* tracer_ = nullptr;
  std::uint16_t trace_source_ = 0;
  std::function<void()> on_push_;
  std::vector<sim::Action> waiters_;  // ring: [waiter_head_, +count)
  std::size_t waiter_head_ = 0;
  std::size_t waiter_count_ = 0;
};

}  // namespace hni::nic
