// Bounded cell FIFO with occupancy instrumentation.
//
// The FIFOs decouple the line-rate datapath from the protocol engines:
// the RX FIFO absorbs back-to-back cell arrivals while the reassembly
// engine and the host bus catch up, and its overflow is the interface's
// cell-loss mechanism; the TX FIFO lets the segmentation engine run
// ahead of the framer. Occupancy statistics (time-average, maximum) and
// drop counts are first-class outputs — FIFO sizing is bench F3/A1.

#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <utility>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hni::nic {

template <typename T>
class CellFifo {
 public:
  CellFifo(sim::Simulator& sim, std::size_t capacity)
      : sim_(sim), capacity_(capacity) {}

  /// Enqueues at the *front* (priority lane for control cells; the
  /// next pop returns it). Same capacity rules as push().
  bool push_front(T item) {
    if (queue_.size() >= capacity_) {
      drops_.add();
      return false;
    }
    pushes_.add();
    queue_.push_front(std::move(item));
    depth_.set(sim_.now(), static_cast<double>(queue_.size()));
    if (on_push_) on_push_();
    return true;
  }

  /// Attempts to enqueue; returns false (and counts a drop) when full.
  bool push(T item) {
    if (queue_.size() >= capacity_) {
      drops_.add();
      return false;
    }
    pushes_.add();
    queue_.push_back(std::move(item));
    depth_.set(sim_.now(), static_cast<double>(queue_.size()));
    if (on_push_) on_push_();
    return true;
  }

  /// Removes the oldest element, if any. At most one queued space
  /// waiter is released per pop.
  std::optional<T> pop() {
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    pops_.add();
    depth_.set(sim_.now(), static_cast<double>(queue_.size()));
    if (!space_waiters_.empty()) {
      auto cb = std::move(space_waiters_.front());
      space_waiters_.pop_front();
      cb();
    }
    return item;
  }

  /// Callback fired on every successful push (consumer wake-up).
  void set_on_push(std::function<void()> cb) { on_push_ = std::move(cb); }

  /// One-shot producer backpressure: `cb` fires after a future pop
  /// frees a slot (FIFO order among waiters).
  void wait_space(std::function<void()> cb) {
    space_waiters_.push_back(std::move(cb));
  }

  bool empty() const { return queue_.empty(); }
  bool full() const { return queue_.size() >= capacity_; }
  std::size_t size() const { return queue_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t drops() const { return drops_.value(); }
  /// Cells accepted / removed since construction. The conservation
  /// identity pushes() == pops() + size() is what the invariant auditor
  /// checks (in = out + dropped + resident, with drops counted at the
  /// offered side).
  std::uint64_t pushes() const { return pushes_.value(); }
  std::uint64_t pops() const { return pops_.value(); }
  double mean_depth() const { return depth_.mean(sim_.now()); }
  double max_depth() const { return depth_.max(); }

 private:
  sim::Simulator& sim_;
  std::size_t capacity_;
  std::deque<T> queue_;
  sim::Counter drops_;
  sim::Counter pushes_;
  sim::Counter pops_;
  sim::TimeWeightedStat depth_;
  std::function<void()> on_push_;
  std::deque<std::function<void()>> space_waiters_;
};

}  // namespace hni::nic
