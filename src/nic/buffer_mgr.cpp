#include "nic/buffer_mgr.hpp"

namespace hni::nic {

bool BoardMemory::add_cell(std::uint64_t chain) {
  Chain& c = chains_[chain];
  if (c.containers == 0 || c.cells_in_tail == config_.cells_per_container) {
    if (in_use_ >= effective_containers()) {
      failures_.add();
      if (c.containers == 0) chains_.erase(chain);
      return false;
    }
    ++in_use_;
    ++c.containers;
    allocated_.add();
    c.cells_in_tail = 0;
    usage_.set(sim_.now(), static_cast<double>(in_use_));
  }
  ++c.cells_in_tail;
  return true;
}

void BoardMemory::set_capacity_limit(std::size_t containers) {
  limit_ = std::min(containers, config_.containers);
}

void BoardMemory::release(std::uint64_t chain) {
  auto it = chains_.find(chain);
  if (it == chains_.end()) return;
  in_use_ -= it->second.containers;
  released_.add(it->second.containers);
  usage_.set(sim_.now(), static_cast<double>(in_use_));
  chains_.erase(it);
}

std::size_t BoardMemory::chain_containers(std::uint64_t chain) const {
  const auto it = chains_.find(chain);
  return it == chains_.end() ? 0 : it->second.containers;
}

}  // namespace hni::nic
