#include "nic/buffer_mgr.hpp"

namespace hni::nic {

bool BoardMemory::add_cell(std::uint64_t chain) {
  Chain& c = *chains_.try_emplace(chain).first;
  if (c.containers == 0 || c.cells_in_tail == config_.cells_per_container) {
    if (in_use_ >= effective_containers()) {
      failures_.add();
      if (c.containers == 0) chains_.erase(chain);
      return false;
    }
    ++in_use_;
    ++c.containers;
    allocated_.add();
    c.cells_in_tail = 0;
    usage_.set(sim_.now(), static_cast<double>(in_use_));
  }
  ++c.cells_in_tail;
  return true;
}

void BoardMemory::set_capacity_limit(std::size_t containers) {
  limit_ = std::min(containers, config_.containers);
}

void BoardMemory::release(std::uint64_t chain) {
  const Chain* c = chains_.find(chain).value;
  if (c == nullptr) return;
  in_use_ -= c->containers;
  released_.add(c->containers);
  usage_.set(sim_.now(), static_cast<double>(in_use_));
  chains_.erase(chain);
}

std::size_t BoardMemory::chain_containers(std::uint64_t chain) const {
  const Chain* c = chains_.find(chain).value;
  return c == nullptr ? 0 : c->containers;
}

}  // namespace hni::nic
