// Per-VC state lookup.
//
// The receive engine must map each arriving cell's VPI/VCI to its
// reassembly state. The paper's design point is a CAM assist (constant
// time); the software alternative is a hash whose probe count the
// engine is charged for. This table is a real open-addressing
// (robin-hood) hash over the packed 32-bit VC label — power-of-two
// capacity, splitmix64-mixed, tombstone-free erase — so lookups report
// their true displacement and the software path stays near-constant
// even at very large VC populations (bench F5 measures the residue;
// bench P2 sweeps the population). State records are pooled in a slot
// arena: a State* stays valid across unrelated inserts and erases.

#pragma once

#include <cstdint>
#include <utility>

#include "atm/cell.hpp"
#include "sim/flat_table.hpp"

namespace hni::nic {

template <typename State>
class VcTable {
 public:
  /// `expected` pre-sizes the index; the table grows past it on demand
  /// (the old fixed-bucket behaviour made probe cost a config knob —
  /// now it is a measurement).
  explicit VcTable(std::size_t expected = 64) : map_(expected) {}

  struct Found {
    State* state = nullptr;
    std::uint32_t extra_probes = 0;  // displacement beyond the home slot
  };

  /// Inserts (or replaces) state for `vc`. The reference is
  /// arena-stable until the VC is erased.
  State& insert(atm::VcId vc, State state) {
    return map_.insert(atm::vc_label(vc), std::move(state));
  }

  /// Looks up `vc`, reporting probe displacement for engine charging.
  Found find(atm::VcId vc) {
    const auto f = map_.find(atm::vc_label(vc));
    return Found{f.value, f.extra_probes};
  }

  bool erase(atm::VcId vc) { return map_.erase(atm::vc_label(vc)); }

  /// Membership test without probe accounting (audit/reconciliation
  /// path — nobody gets charged engine cycles for bookkeeping reads).
  bool contains(atm::VcId vc) const {
    return map_.contains(atm::vc_label(vc));
  }

  std::size_t size() const { return map_.size(); }
  std::size_t index_capacity() const { return map_.index_capacity(); }
  /// Steady-state bytes the table occupies (index + pooled records).
  std::size_t memory_bytes() const { return map_.memory_bytes(); }

  /// Visits every (vc, state) pair in slot order (deterministic for a
  /// same-seed run). The callback must not mutate the table.
  template <typename Fn>
  void for_each(Fn&& fn) {
    map_.for_each([&fn](std::uint32_t label, State& s) {
      fn(atm::vc_from_label(label), s);
    });
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&fn](std::uint32_t label, const State& s) {
      fn(atm::vc_from_label(label), s);
    });
  }

 private:
  sim::FlatMap<std::uint32_t, State> map_;
};

}  // namespace hni::nic
