// Per-VC state lookup.
//
// The receive engine must map each arriving cell's VPI/VCI to its
// reassembly state. The paper's design point is a CAM assist (constant
// time); the software alternative is an open hash whose probe count
// grows with the number of active VCs — the difference is exactly what
// bench F5 measures. This table is a real open hash: lookups report how
// many extra probes the search performed so the engine can be charged
// faithfully.

#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "atm/cell.hpp"

namespace hni::nic {

template <typename State>
class VcTable {
 public:
  explicit VcTable(std::size_t buckets = 64) : buckets_(buckets) {}

  struct Found {
    State* state = nullptr;
    std::uint32_t extra_probes = 0;  // chain hops beyond the first slot
  };

  /// Inserts (or replaces) state for `vc`.
  State& insert(atm::VcId vc, State state) {
    auto& chain = buckets_[index(vc)];
    for (auto& entry : chain) {
      if (entry.first == vc) {
        entry.second = std::move(state);
        return entry.second;
      }
    }
    chain.emplace_back(vc, std::move(state));
    ++size_;
    return chain.back().second;
  }

  /// Looks up `vc`, reporting chain probes.
  Found find(atm::VcId vc) {
    auto& chain = buckets_[index(vc)];
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (chain[i].first == vc) {
        return Found{&chain[i].second, static_cast<std::uint32_t>(i)};
      }
    }
    return Found{nullptr,
                 static_cast<std::uint32_t>(chain.empty() ? 0
                                                          : chain.size() - 1)};
  }

  bool erase(atm::VcId vc) {
    auto& chain = buckets_[index(vc)];
    for (auto it = chain.begin(); it != chain.end(); ++it) {
      if (it->first == vc) {
        chain.erase(it);
        --size_;
        return true;
      }
    }
    return false;
  }

  /// Membership test without probe accounting (audit/reconciliation
  /// path — nobody gets charged engine cycles for bookkeeping reads).
  bool contains(atm::VcId vc) const {
    for (const auto& entry : buckets_[index(vc)]) {
      if (entry.first == vc) return true;
    }
    return false;
  }

  std::size_t size() const { return size_; }
  std::size_t bucket_count() const { return buckets_.size(); }

  /// Visits every (vc, state) pair.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& chain : buckets_) {
      for (auto& entry : chain) fn(entry.first, entry.second);
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& chain : buckets_) {
      for (const auto& entry : chain) fn(entry.first, entry.second);
    }
  }

 private:
  std::size_t index(atm::VcId vc) const {
    return std::hash<atm::VcId>{}(vc) % buckets_.size();
  }

  std::vector<std::vector<std::pair<atm::VcId, State>>> buckets_;
  std::size_t size_ = 0;
};

}  // namespace hni::nic
