#include "nic/nic.hpp"

namespace hni::nic {

Nic::Nic(sim::Simulator& sim, bus::Bus& bus, bus::HostMemory& memory,
         NicConfig config)
    : config_(std::move(config)), sim_(&sim) {
  tx_ = std::make_unique<TxPath>(sim, bus, memory, config_.firmware,
                                 config_.tx, config_.line);
  rx_ = std::make_unique<RxPath>(sim, bus, memory, config_.firmware,
                                 config_.rx);
  rx_->set_oam_handler(
      [this](atm::VcId vc, const atm::OamCell& oam) { on_oam(vc, oam); });
}

void Nic::send_loopback(atm::VcId vc, std::uint64_t tag) {
  ++loopbacks_sent_;
  outstanding_loopbacks_[tag] = sim_->now();
  atm::OamCell oam;
  oam.function = atm::OamFunction::kLoopbackRequest;
  oam.tag = tag;
  tx_->inject_cell(oam.to_cell(vc));
}

void Nic::on_oam(atm::VcId vc, const atm::OamCell& oam) {
  switch (oam.function) {
    case atm::OamFunction::kLoopbackRequest: {
      // Answer on the same VC: the firmware turns the cell around.
      ++loopbacks_answered_;
      atm::OamCell reply;
      reply.function = atm::OamFunction::kLoopbackResponse;
      reply.tag = oam.tag;
      reply.end_to_end = oam.end_to_end;
      tx_->inject_cell(reply.to_cell(vc));
      break;
    }
    case atm::OamFunction::kLoopbackResponse: {
      auto it = outstanding_loopbacks_.find(oam.tag);
      if (it == outstanding_loopbacks_.end()) break;
      const sim::Time rtt = sim_->now() - it->second;
      outstanding_loopbacks_.erase(it);
      ++loopbacks_completed_;
      if (loopback_handler_) loopback_handler_(vc, oam.tag, rtt);
      break;
    }
    case atm::OamFunction::kAis:
    case atm::OamFunction::kRdi:
      // Alarm codepoints are counted by the RX path; no automatic
      // reaction is modeled here.
      break;
  }
}

void Nic::attach_tx(net::Link& link) {
  tx_->framer().set_sink([&link](const atm::Cell& cell) { link.send(cell); });
  tx_->start();
}

}  // namespace hni::nic
