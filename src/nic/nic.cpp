#include "nic/nic.hpp"

#include <algorithm>

#include "atm/rm.hpp"

namespace hni::nic {

Nic::Nic(sim::Simulator& sim, bus::Bus& bus, bus::HostMemory& memory,
         NicConfig config)
    : config_(std::move(config)), sim_(&sim) {
  tx_ = std::make_unique<TxPath>(sim, bus, memory, config_.firmware,
                                 config_.tx, config_.line);
  rx_ = std::make_unique<RxPath>(sim, bus, memory, config_.firmware,
                                 config_.rx);
  rx_->set_oam_handler(
      [this](atm::VcId vc, const atm::OamCell& oam) { on_oam(vc, oam); });
  rx_->set_rm_handler(
      [this](atm::VcId vc, const atm::Cell& c) { on_rm(vc, c); });
  rx_->set_efci_observer([this](atm::VcId vc) { on_efci(vc); });
  rx_->set_activity_observer([this](atm::VcId vc) { on_activity(vc); });
}

namespace {
// Backward resource-management cell (ABR-flavoured), layout per
// atm/rm.hpp: protocol id, flags (CI + BN), and an explicit-rate field
// born unlimited — switches running ERICA tighten it in flight.
atm::Cell make_rm_cell(atm::VcId vc, bool congestion) {
  atm::Cell c;
  c.header.vc = vc;
  c.header.pti = atm::Pti::kResourceMgmt;
  c.payload[0] = atm::kRmProtocolId;
  atm::rm_set_flags(c.payload.data(),
                    static_cast<std::uint8_t>(
                        atm::kRmFlagBackward |
                        (congestion ? atm::kRmFlagCi : 0)));
  atm::rm_set_explicit_rate(c.payload.data(), atm::kRmErUnlimited);
  return c;
}
}  // namespace

void Nic::on_efci(atm::VcId vc) {
  const CongestionControlConfig& cc = config_.congestion;
  if (!cc.enabled) return;
  auto [st, inserted] = congestion_.try_emplace(atm::vc_label(vc));
  const sim::Time now = sim_->now();
  if (inserted || now - st->window_start > cc.window) {
    // A stale window's marks do not accumulate: sustained congestion,
    // not a lone straggler cell, is what triggers feedback.
    st->window_start = now;
    st->marks = 0;
  }
  ++st->marks;
  if (st->marks < cc.marks_per_rm) return;
  if (st->rm_ever_sent && now - st->last_rm_sent < cc.rm_min_gap) return;
  st->marks = 0;
  st->window_start = now;
  st->rm_ever_sent = true;
  st->last_rm_sent = now;
  ++rm_sent_;
  // Backward RM on the same VC: the network's reverse route carries it
  // to the source, whose RX path hands it to on_rm there.
  tx_->inject_cell(make_rm_cell(vc, true));
}

void Nic::on_rm(atm::VcId vc, const atm::Cell& cell) {
  ++rm_received_;
  const CongestionControlConfig& cc = config_.congestion;
  if (!cc.enabled) return;
  if (!atm::rm_is_protocol(cell.payload.data())) return;
  // Contracted VCs are not throttled: their PCR is an admission-time
  // commitment (CAC already sized the network for it); the elastic
  // best-effort traffic is what backs off.
  if (tx_->has_contract(vc)) return;

  const std::uint32_t er = atm::rm_explicit_rate(cell.payload.data());
  if (cc.explicit_rate && er != atm::kRmErUnlimited) {
    // ERICA: jump the shaper straight to the tightest grant any switch
    // on the path stamped — no blind decrease, no hunting. The grant is
    // the path minimum already, so each RM cell is authoritative.
    auto [st, inserted] = congestion_.try_emplace(atm::vc_label(vc));
    const double line = config_.line.cells_per_second();
    const double factor = std::clamp(static_cast<double>(er) / line,
                                     cc.min_rate_factor, 1.0);
    if (factor < 1.0) st->last_congestion = sim_->now();
    if (factor < st->rate_factor) ++throttle_events_;
    if (factor != st->rate_factor) {
      st->rate_factor = factor;
      tx_->set_rate_factor(vc, factor);
      if (congestion_handler_) congestion_handler_(vc, factor);
    }
    if (factor < 1.0 && !st->recovery_armed) {
      st->recovery_armed = true;
      schedule_recovery(vc);
    }
    return;
  }

  if ((atm::rm_flags(cell.payload.data()) & atm::kRmFlagCi) == 0) return;
  auto [st, inserted] = congestion_.try_emplace(atm::vc_label(vc));
  st->last_congestion = sim_->now();
  const double next =
      std::max(cc.min_rate_factor, st->rate_factor * cc.decrease);
  if (next < st->rate_factor) {
    st->rate_factor = next;
    ++throttle_events_;
    tx_->set_rate_factor(vc, next);
    if (congestion_handler_) congestion_handler_(vc, next);
  }
  if (!st->recovery_armed) {
    st->recovery_armed = true;
    schedule_recovery(vc);
  }
}

void Nic::schedule_recovery(atm::VcId vc) {
  sim_->after(config_.congestion.recovery_period, [this, vc] {
    CongestionVc* st = congestion_.find(atm::vc_label(vc)).value;
    if (st == nullptr) return;  // VC closed meanwhile
    const CongestionControlConfig& cc = config_.congestion;
    if (sim_->now() - st->last_congestion < cc.recovery_period) {
      // Congestion refreshed the quiet timer: try again later.
      schedule_recovery(vc);
      return;
    }
    if (st->rate_factor >= 1.0) {
      st->recovery_armed = false;
      return;
    }
    st->rate_factor = std::min(1.0, st->rate_factor * cc.increase);
    ++recoveries_;
    tx_->set_rate_factor(vc, st->rate_factor);
    if (congestion_handler_) congestion_handler_(vc, st->rate_factor);
    if (st->rate_factor >= 1.0) {
      st->recovery_armed = false;
      return;
    }
    schedule_recovery(vc);
  });
}

void Nic::notify_defect(atm::VcId vc, Defect defect, bool active) {
  for (const auto& observer : defect_observers_) observer(vc, defect, active);
}

void Nic::trace_cc(atm::VcId vc, bool declared) {
  if (tracer_ == nullptr) return;
  tracer_->emit({sim_->now(), sim::TraceEventId::kOamCc, trace_source_,
                 atm::vc_label(vc), declared ? 1u : 0u, 0});
}

void Nic::start_cc(atm::VcId vc) {
  if (!config_.cc.enabled) return;
  auto [st, inserted] = cc_.try_emplace(atm::vc_label(vc));
  st->vc = vc;
  st->last_arrival = sim_->now();
  const std::uint64_t epoch = ++st->epoch;  // kills any stale timer
  sim_->after(config_.cc.period, [this, vc, epoch] { cc_tick(vc, epoch); });
}

void Nic::stop_cc(atm::VcId vc) {
  CcVc* st = cc_.find(atm::vc_label(vc)).value;
  if (st == nullptr) return;
  // A standing alarm dies with the monitoring, through the same books
  // and observers a live clear would use — nothing stays declared on a
  // connection that no longer exists.
  if (st->loc) {
    ++cc_cleared_;
    trace_cc(vc, false);
    notify_defect(vc, Defect::kLoc, false);
  }
  if (st->ais_standing) notify_defect(vc, Defect::kAis, false);
  cc_.erase(atm::vc_label(vc));
}

void Nic::on_activity(atm::VcId vc) {
  CcVc* st = cc_.find(atm::vc_label(vc)).value;
  if (st == nullptr) return;
  st->last_arrival = sim_->now();
  if (st->loc) {
    // Continuity proved again: clear the alarm on the first arrival.
    st->loc = false;
    ++cc_cleared_;
    trace_cc(vc, false);
    notify_defect(vc, Defect::kLoc, false);
  }
}

void Nic::cc_tick(atm::VcId vc, std::uint64_t epoch) {
  CcVc* st = cc_.find(atm::vc_label(vc)).value;
  if (st == nullptr || st->epoch != epoch) return;
  const sim::Time now = sim_->now();
  // Source role: the heartbeat that keeps the far sink's LOC clock
  // reset even when the application has nothing to say.
  atm::OamCell oam;
  oam.function = atm::OamFunction::kContinuityCheck;
  ++cc_sent_;
  tx_->inject_cell(oam.to_cell(vc));
  // AIS hold expiry: indications stopped arriving, the alarm clears.
  if (st->ais_standing && now >= st->ais_until) {
    st->ais_standing = false;
    notify_defect(vc, Defect::kAis, false);
  }
  // Sink role: declare LOC once the silence crosses the threshold —
  // unless AIS stands, which already names the failure hop-by-hop.
  const auto threshold = static_cast<sim::Time>(
      static_cast<double>(config_.cc.period) * config_.cc.loss_multiplier);
  if (!st->loc && !st->ais_standing && now - st->last_arrival > threshold) {
    st->loc = true;
    ++cc_declared_;
    trace_cc(vc, true);
    notify_defect(vc, Defect::kLoc, true);
  }
  sim_->after(config_.cc.period, [this, vc, epoch] { cc_tick(vc, epoch); });
}

void Nic::close_vc(atm::VcId vc) {
  stop_cc(vc);
  rx_->close_vc(vc);
  open_vcs_.erase(std::remove(open_vcs_.begin(), open_vcs_.end(), vc),
                  open_vcs_.end());
  // Abandon loopbacks the closed VC will never answer. Sorted walk so
  // the sweep order (and the books it feeds) is byte-deterministic.
  std::vector<std::uint64_t> stale;
  outstanding_loopbacks_.for_each_sorted(
      [&](std::uint64_t tag, const PendingLoopback& p) {
        if (p.vc == vc) stale.push_back(tag);
      });
  for (const std::uint64_t tag : stale) {
    outstanding_loopbacks_.erase(tag);
    ++loopbacks_abandoned_;
  }
  // Clear a standing RDI pause: the hold timer keys off rdi_until_, so
  // without this a VC closed while paused would leave its label in the
  // table and the TX lane frozen if the VC is ever reopened.
  if (rdi_until_.erase(atm::vc_label(vc)) && tx_->vc_paused(vc)) {
    tx_->resume_vc(vc);
  }
  // Congestion state dies with the connection; a lingering throttle
  // must not slow the VC if it is ever reopened.
  if (congestion_.erase(atm::vc_label(vc))) {
    tx_->set_rate_factor(vc, 1.0);
  }
}

void Nic::send_loopback(atm::VcId vc, std::uint64_t tag) {
  ++loopbacks_sent_;
  outstanding_loopbacks_.insert(tag, PendingLoopback{vc, sim_->now()});
  atm::OamCell oam;
  oam.function = atm::OamFunction::kLoopbackRequest;
  oam.tag = tag;
  tx_->inject_cell(oam.to_cell(vc));
}

void Nic::on_oam(atm::VcId vc, const atm::OamCell& oam) {
  switch (oam.function) {
    case atm::OamFunction::kLoopbackRequest: {
      // Answer on the same VC: the firmware turns the cell around.
      ++loopbacks_answered_;
      atm::OamCell reply;
      reply.function = atm::OamFunction::kLoopbackResponse;
      reply.tag = oam.tag;
      reply.end_to_end = oam.end_to_end;
      tx_->inject_cell(reply.to_cell(vc));
      break;
    }
    case atm::OamFunction::kLoopbackResponse: {
      const PendingLoopback* pending =
          outstanding_loopbacks_.find(oam.tag).value;
      if (pending == nullptr) break;
      const sim::Time rtt = sim_->now() - pending->sent;
      outstanding_loopbacks_.erase(oam.tag);
      ++loopbacks_completed_;
      if (loopback_handler_) loopback_handler_(vc, oam.tag, rtt);
      break;
    }
    case atm::OamFunction::kAis: {
      // Downstream path declared dead: echo a remote defect indication
      // upstream so the far end stops transmitting into the failure.
      ++ais_received_;
      atm::OamCell rdi;
      rdi.function = atm::OamFunction::kRdi;
      rdi.tag = oam.tag;
      rdi.end_to_end = oam.end_to_end;
      ++rdi_sent_;
      tx_->inject_cell(rdi.to_cell(vc));
      // CC interplay: AIS names the failure already, so it suppresses
      // (and supersedes) the sink's loss-of-continuity alarm while the
      // indications keep arriving.
      if (CcVc* st = cc_.find(atm::vc_label(vc)).value) {
        st->ais_until = sim_->now() + config_.cc.ais_hold;
        if (!st->ais_standing) {
          st->ais_standing = true;
          notify_defect(vc, Defect::kAis, true);
        }
        if (st->loc) {
          st->loc = false;
          ++cc_cleared_;
          trace_cc(vc, false);
          notify_defect(vc, Defect::kLoc, false);
        }
      }
      break;
    }
    case atm::OamFunction::kRdi: {
      // The far end cannot hear us: pause the VC rather than pour
      // cells into a dead path. Each RDI extends the hold; the VC
      // resumes rdi_hold after the indications stop.
      ++rdi_received_;
      auto [deadline, first] = rdi_until_.try_emplace(atm::vc_label(vc));
      *deadline = sim_->now() + config_.rdi_hold;
      tx_->pause_vc(vc);
      if (first) {
        schedule_rdi_resume(vc);
        notify_defect(vc, Defect::kRdi, true);
      }
      break;
    }
    case atm::OamFunction::kContinuityCheck:
      // The heartbeat itself carries no payload semantics: its arrival
      // already reset the LOC clock via the activity observer.
      ++cc_received_;
      break;
  }
}

void Nic::on_link_state(bool down) {
  if (down == los_) return;
  los_ = down;
  ++ais_epoch_;
  if (down) {
    ++los_events_;
    if (config_.ais_period > 0) insert_ais();
  }
}

void Nic::insert_ais() {
  if (!los_) return;
  // The PHY substitutes AIS cells for the missing signal: one per open
  // VC, fed into the NIC's own receive stream so the standard OAM path
  // (engine cost, CRC-10 check, on_oam dispatch) sees the alarm.
  for (atm::VcId vc : open_vcs_) {
    atm::OamCell oam;
    oam.function = atm::OamFunction::kAis;
    ++ais_inserted_;
    const atm::Cell c = oam.to_cell(vc);
    net::WireCell wire;
    wire.bytes = c.serialize(atm::HeaderFormat::kUni);
    wire.meta = c.meta;
    rx_->receive_wire(wire);
  }
  const std::uint64_t epoch = ais_epoch_;
  sim_->after(config_.ais_period, [this, epoch] {
    if (epoch == ais_epoch_) insert_ais();
  });
}

void Nic::schedule_rdi_resume(atm::VcId vc) {
  const sim::Time* until = rdi_until_.find(atm::vc_label(vc)).value;
  if (until == nullptr) return;
  sim_->at(*until, [this, vc] {
    const sim::Time* at = rdi_until_.find(atm::vc_label(vc)).value;
    if (at == nullptr) return;  // cleared meanwhile (e.g. VC closed)
    if (sim_->now() >= *at) {
      // No RDI for a full hold interval: the defect cleared.
      rdi_until_.erase(atm::vc_label(vc));
      tx_->resume_vc(vc);
      notify_defect(vc, Defect::kRdi, false);
    } else {
      schedule_rdi_resume(vc);  // hold was extended by a newer RDI
    }
  });
}

void Nic::attach_tx(net::Link& link) {
  tx_->framer().set_sink([&link](const atm::Cell& cell) { link.send(cell); });
  tx_->start();
}

void Nic::attach_rx(net::Link& link) {
  link.set_sink([this](const net::WireCell& w) { rx_->receive_wire(w); });
  link.add_state_observer([this](bool down) { on_link_state(down); });
}

}  // namespace hni::nic
