// Receive side of the host-network interface.
//
// The pipeline:
//
//   wire --> HEC check/correct --> RX cell FIFO --> reassembly engine
//                                       |                 |
//                                  (overflow =            | VC lookup (CAM
//                                   cell loss)            |  or hash), buffer
//                                                         |  chain append,
//                                                         v  trailer check
//                                  board containers   completed PDU
//                                                         |
//                                host memory <===(DMA)====+
//                                       |
//                                  interrupt (per PDU, coalesced)
//
// The RX FIFO absorbs line-rate bursts while the engine works; its
// overflow is the architecture's loss mechanism under overload (bench
// F3). The engine is charged per cell from the firmware tables; hash
// probe counts come from the real VC table so lookup cost scales with
// active VCs (bench F5). Completed PDUs cross the bus once and the host
// is interrupted per PDU or less.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>

#include "aal/sar.hpp"
#include "atm/hec.hpp"
#include "atm/oam.hpp"
#include "bus/dma.hpp"
#include "net/link.hpp"
#include "nic/buffer_mgr.hpp"
#include "nic/fifo.hpp"
#include "nic/interrupt.hpp"
#include "nic/vc_table.hpp"
#include "nic/watchdog.hpp"
#include "proc/engine.hpp"
#include "proc/firmware.hpp"

namespace hni::nic {

/// A PDU landed in host memory.
struct RxDelivery {
  atm::VcId vc;
  bus::SgList sg;              // host buffers holding the SDU
  std::size_t len = 0;         // SDU octets
  sim::Time first_cell_time = 0;   // sender-side stamp of first cell
  sim::Time delivered_time = 0;    // when the DMA completed
  std::size_t interrupt_batch = 0; // deliveries covered by the interrupt
  bool first_of_batch = false;     // true for the first delivery of an
                                   // interrupt (hosts charge interrupt
                                   // entry once per batch)
};

struct RxPathConfig {
  proc::EngineConfig engine{"rx-engine", 25e6, 1.0};
  std::size_t fifo_cells = 64;
  BoardMemoryConfig board{};
  /// Pre-sizes the VC table's index (it grows past this on demand; the
  /// name is historical — probe cost is measured, not configured).
  std::size_t vc_buckets = 64;
  sim::Time interrupt_coalesce = 0;
  /// Landing DMA retry/backoff policy (max_retries = 0 disables
  /// recovery: one failed attempt loses the PDU).
  bus::DmaConfig dma{};
  std::size_t max_sdu = aal::kAal5MaxSdu;
  /// A partially assembled PDU idle this long is abandoned and its
  /// board containers reclaimed (a lost final cell must not pin
  /// resources). 0 disables the sweep.
  sim::Time reassembly_timeout = sim::milliseconds(50);
  /// Watchdog sampling interval: a reassembly engine that shows no
  /// progress across two samples while cells wait is abort-and-reclaim
  /// reset. 0 disables the watchdog (recovery off).
  sim::Time watchdog_interval = sim::milliseconds(10);
};

class RxPath {
 public:
  using DeliverFn = std::function<void(RxDelivery)>;
  /// Provides host buffers for a PDU of the given size; empty optional
  /// means the host is out of receive buffers (the PDU is dropped).
  using BufferAllocator =
      std::function<std::optional<bus::SgList>(std::size_t)>;

  RxPath(sim::Simulator& sim, bus::Bus& bus, bus::HostMemory& memory,
         const proc::FirmwareProfile& firmware, RxPathConfig config);

  /// Opens a VC for reassembly with the given AAL.
  void open_vc(atm::VcId vc, aal::AalType aal);
  void close_vc(atm::VcId vc);
  /// Whether `vc` is currently open (audit/reconciliation path).
  bool vc_open(atm::VcId vc) const { return vcs_.contains(vc); }
  std::size_t vcs_open() const { return vcs_.size(); }
  /// Every open VC, for state reconciliation (cold path, allocates).
  std::vector<atm::VcId> open_vc_ids() const {
    std::vector<atm::VcId> out;
    out.reserve(vcs_.size());
    vcs_.for_each([&out](atm::VcId vc, const VcState&) { out.push_back(vc); });
    return out;
  }

  /// PHY entry point: connect a net::Link's sink here.
  void receive_wire(const net::WireCell& wire);

  /// Host-facing delivery hook (fires after DMA + interrupt).
  void set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }
  /// Overrides the default allocator (which draws directly from host
  /// memory) — the host driver's free-buffer ring.
  void set_buffer_allocator(BufferAllocator alloc) {
    alloc_ = std::move(alloc);
  }
  /// Returns buffers obtained from the allocator but never delivered
  /// (the landing DMA gave up). Must undo whatever the allocator did.
  using BufferReleaser = std::function<void(const bus::SgList&)>;
  void set_buffer_releaser(BufferReleaser release) {
    release_ = std::move(release);
  }

  // --- fault hooks & recovery -------------------------------------------
  /// Wedges the reassembly engine: it stops draining the FIFO (which
  /// then overflows) until unwedge_engine() or a watchdog reset.
  void wedge_engine() { wedged_ = true; }
  /// Clears a wedge without the destructive reset (fault ended by
  /// itself). Resumes service.
  void unwedge_engine();
  /// Abort-and-reclaim reset: flushes the cell FIFO, releases every
  /// mid-PDU board chain back to the pool (accounted as pdus_aborted)
  /// and resets the reassembly streams. The watchdog's action.
  void reset_engine();
  /// The landing DMA engine (fault hooks: fail_next / stall).
  bus::DmaEngine& dma() { return dma_; }
  const bus::DmaEngine& dma() const { return dma_; }
  std::uint64_t watchdog_resets() const {
    return watchdog_ ? watchdog_->resets() : 0;
  }

  /// Receives valid OAM cells arriving on open VCs (fault management;
  /// the Nic wires loopback semantics on top).
  using OamHandler = std::function<void(atm::VcId, const atm::OamCell&)>;
  void set_oam_handler(OamHandler handler) {
    oam_handler_ = std::move(handler);
  }

  /// Receives resource-management cells (PTI 0b110) arriving on open
  /// VCs — the Nic's congestion controller closes the EFCI loop here.
  using RmHandler = std::function<void(atm::VcId, const atm::Cell&)>;
  void set_rm_handler(RmHandler handler) { rm_handler_ = std::move(handler); }

  /// Fires once per user-data cell observed with the EFCI congestion
  /// mark (after the reassembly engine has accepted the cell).
  using EfciObserver = std::function<void(atm::VcId)>;
  void set_efci_observer(EfciObserver observer) {
    efci_observer_ = std::move(observer);
  }

  /// Fires once per cell the engine pulls for a *known* VC (user data,
  /// OAM or RM alike), before any engine-time elapses — the liveness
  /// signal the NIC's continuity-check sink feeds on. One branch when
  /// unset.
  using ActivityObserver = std::function<void(atm::VcId)>;
  void set_activity_observer(ActivityObserver observer) {
    activity_observer_ = std::move(observer);
  }

  InterruptController& interrupts() { return interrupts_; }
  const InterruptController& interrupts() const { return interrupts_; }
  const proc::Engine& engine() const { return engine_; }
  const CellFifo<atm::Cell>& fifo() const { return fifo_; }
  const BoardMemory& board() const { return board_; }
  /// Mutable board pool (fault hooks: set_capacity_limit).
  BoardMemory& board_memory() { return board_; }

  // --- statistics -----------------------------------------------------
  std::uint64_t cells_received() const { return cells_in_.value(); }
  std::uint64_t cells_hec_discarded() const { return hec_discard_.value(); }
  std::uint64_t cells_hec_corrected() const { return hec_corrected_.value(); }
  std::uint64_t cells_fifo_dropped() const { return fifo_.drops(); }
  std::uint64_t cells_no_vc() const { return no_vc_.value(); }
  std::uint64_t pdus_delivered() const { return pdus_ok_.value(); }
  std::uint64_t pdus_errored() const { return pdus_err_.value(); }
  std::uint64_t pdus_dropped_board() const { return board_drop_.value(); }
  std::uint64_t pdus_dropped_host_buffers() const {
    return host_buffer_drop_.value();
  }
  std::uint64_t oam_cells_received() const { return oam_cells_.value(); }
  std::uint64_t oam_cells_bad() const { return oam_bad_.value(); }
  /// User-data cells that arrived carrying the EFCI congestion mark.
  std::uint64_t cells_efci_marked() const { return efci_marked_.value(); }
  /// Resource-management cells handed to the RM handler.
  std::uint64_t rm_cells_received() const { return rm_cells_.value(); }
  /// Partial PDUs abandoned by the reassembly-timeout sweep.
  std::uint64_t pdus_timed_out() const { return timeouts_.value(); }
  /// Partial PDUs aborted by an engine reset (watchdog recovery).
  std::uint64_t pdus_aborted() const { return aborted_.value(); }
  /// Completed PDUs lost because the landing DMA gave up after retries.
  std::uint64_t pdus_dropped_dma() const { return dma_drop_.value(); }
  /// Cells the engine pulled from the FIFO for processing.
  std::uint64_t cells_serviced() const { return serviced_.value(); }
  /// Cells discarded from the FIFO by an engine reset.
  std::uint64_t cells_flushed() const { return flushed_.value(); }
  std::uint64_t error_count(aal::ReassemblyError e) const {
    return error_counts_[static_cast<std::size_t>(e)].value();
  }
  /// Reassembly latency: first cell emission to host-memory landing.
  const sim::RunningStat& pdu_latency_us() const { return latency_us_; }

  /// Per-phase cycle budget of the reassembly engine (arrival + lookup,
  /// append, CRC, OAM, delivery, DMA wait) — bench O1's RX table.
  const sim::CycleProfiler& profiler() const { return profiler_; }

  /// Surfaces the path's books (and per-VC counters for open and future
  /// VCs) under `scope`.
  void register_metrics(const sim::MetricScope& scope);

  /// Attaches a tracer: a priority-lane (OAM/control) cell refused by a
  /// full RX FIFO emits kFifoPriorityDrop tagged `name`.
  void set_tracer(sim::Tracer* tracer, const std::string& name) {
    fifo_.set_tracer(tracer, tracer ? tracer->intern(name) : 0);
  }

 private:
  struct VcState {
    aal::AalType aal = aal::AalType::kAal5;
    std::unique_ptr<aal::FrameReassembler> reasm;
    sim::Time last_activity = 0;
    // Per-VC instruments (registry-owned; null until metrics attach).
    sim::Counter* m_cells = nullptr;
    sim::Counter* m_pdus = nullptr;
    sim::Counter* m_efci = nullptr;
  };

  void attach_vc_metrics(atm::VcId vc, VcState& vs);

  void service();
  void sweep_stale_pdus();
  void process_cell(atm::Cell cell, VcState& state);
  void complete_pdu(atm::VcId vc, VcState& state, aal::FrameDelivery d);
  static bool is_first_cell(const atm::Cell& cell, const VcState& state);
  static std::uint64_t chain_key(atm::VcId vc) {
    return (static_cast<std::uint64_t>(vc.vpi) << 16) | vc.vci;
  }
  /// Whether this cell ends a PDU (peeked for cost computation).
  static bool is_last_cell(const atm::Cell& cell, aal::AalType aal);

  sim::Simulator& sim_;
  bus::HostMemory& memory_;
  bus::DmaEngine dma_;
  proc::FirmwareProfile firmware_;
  RxPathConfig config_;
  sim::CycleProfiler profiler_;
  proc::Engine engine_;
  CellFifo<atm::Cell> fifo_;
  BoardMemory board_;
  atm::HecReceiver hec_;
  VcTable<VcState> vcs_;
  InterruptController interrupts_;
  DeliverFn deliver_;
  BufferAllocator alloc_;
  BufferReleaser release_;
  OamHandler oam_handler_;
  RmHandler rm_handler_;
  EfciObserver efci_observer_;
  ActivityObserver activity_observer_;
  std::unique_ptr<Watchdog> watchdog_;
  bool engine_busy_ = false;
  bool wedged_ = false;

  // Cycle-budget phases (see profiler()).
  sim::CycleProfiler::PhaseId ph_arrival_;
  sim::CycleProfiler::PhaseId ph_append_;
  sim::CycleProfiler::PhaseId ph_crc_;
  sim::CycleProfiler::PhaseId ph_oam_;
  sim::CycleProfiler::PhaseId ph_deliver_;
  sim::CycleProfiler::PhaseId ph_dma_wait_;
  std::optional<sim::MetricScope> metrics_;

  sim::Counter cells_in_;
  sim::Counter hec_discard_;
  sim::Counter hec_corrected_;
  sim::Counter no_vc_;
  sim::Counter pdus_ok_;
  sim::Counter pdus_err_;
  sim::Counter board_drop_;
  sim::Counter host_buffer_drop_;
  sim::Counter oam_cells_;
  sim::Counter oam_bad_;
  sim::Counter efci_marked_;
  sim::Counter rm_cells_;
  sim::Counter timeouts_;
  sim::Counter aborted_;
  sim::Counter dma_drop_;
  sim::Counter serviced_;
  sim::Counter flushed_;
  std::array<sim::Counter, 7> error_counts_;
  sim::RunningStat latency_us_;

  // Deliveries completed but not yet covered by an interrupt; flushed
  // to the host when the controller fires.
  std::vector<RxDelivery> pending_deliveries_;
};

}  // namespace hni::nic
