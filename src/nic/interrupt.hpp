// Interrupt controller with coalescing.
//
// A defining property of the architecture is that the host is
// interrupted per PDU (or less), never per cell. The controller batches
// completion events raised within a coalescing window into a single
// interrupt; the handler learns how many events it covers. A window of
// zero still merges events raised at the same simulated instant.

#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hni::nic {

class InterruptController {
 public:
  /// Handler receives the number of events the interrupt covers.
  using Handler = std::function<void(std::size_t events)>;

  InterruptController(sim::Simulator& sim, sim::Time coalesce_window)
      : sim_(sim), window_(coalesce_window) {}

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Raises one completion event.
  void post() {
    events_.add();
    ++pending_;
    if (armed_) return;
    armed_ = true;
    sim_.after(window_, [this] {
      armed_ = false;
      const std::size_t batch = pending_;
      pending_ = 0;
      interrupts_.add();
      if (handler_) handler_(batch);
    });
  }

  std::uint64_t events() const { return events_.value(); }
  std::uint64_t interrupts() const { return interrupts_.value(); }

  /// Mean events per interrupt (coalescing effectiveness).
  double batching() const {
    return interrupts_.value() == 0
               ? 0.0
               : static_cast<double>(events_.value()) /
                     static_cast<double>(interrupts_.value());
  }

 private:
  sim::Simulator& sim_;
  sim::Time window_;
  Handler handler_;
  std::size_t pending_ = 0;
  bool armed_ = false;
  sim::Counter events_;
  sim::Counter interrupts_;
};

}  // namespace hni::nic
