#include "nic/tx_path.hpp"

#include <algorithm>
#include <utility>

namespace hni::nic {

TxPath::TxPath(sim::Simulator& sim, bus::Bus& bus, bus::HostMemory& memory,
               const proc::FirmwareProfile& firmware, TxPathConfig config,
               atm::LineRate line)
    : sim_(sim),
      memory_(memory),
      dma_(bus, memory, config.dma),
      firmware_(firmware),
      config_(config),
      profiler_(config.engine.clock_hz),
      engine_(sim, config.engine),
      fifo_(sim, config.fifo_cells),
      framer_(sim, std::move(line)) {
  ph_fetch_ = profiler_.phase("descriptor fetch + DMA program");
  ph_dma_wait_ = profiler_.phase("staging DMA wait (overlapped)");
  ph_trailer_ = profiler_.phase("CPCS trailer build");
  ph_header_ = profiler_.phase("cell header build + enqueue");
  ph_crc_ = profiler_.phase("payload CRC (software)");
  ph_stall_ = profiler_.phase("TX FIFO stall");
  ph_complete_ = profiler_.phase("PDU completion");
  engine_.set_profiler(&profiler_);
  if (config_.clock_ppm) framer_.set_clock_ppm(*config_.clock_ppm);
  framer_.set_supplier([this]() -> std::optional<atm::Cell> {
    return fifo_.pop();
  });
  if (config_.watchdog_interval > 0) {
    watchdog_ = std::make_unique<Watchdog>(
        sim_, config_.watchdog_interval,
        [this] { return cells_.value(); },
        [this] { return has_runnable_work(); },
        [this] {
          // Reset: clear any wedge and restart both halves of the
          // pipeline. Non-destructive — staged cells survive.
          wedged_ = false;
          schedule_emission();
          maybe_stage_next();
        });
  }
}

TxPath::VcState& TxPath::state_for(atm::VcId vc) {
  auto [state, inserted] = vcs_.try_emplace(atm::vc_label(vc));
  if (inserted) {
    rr_.push_back(vc);
    attach_vc_metrics(vc, *state);
  }
  return *state;
}

void TxPath::attach_vc_metrics(atm::VcId vc, VcState& vs) {
  if (!metrics_) return;
  const sim::MetricScope scope = metrics_->vc(vc.vpi, vc.vci);
  vs.m_cells = &scope.counter("cells");
  vs.m_pdus = &scope.counter("pdus");
}

void TxPath::register_metrics(const sim::MetricScope& scope) {
  metrics_ = scope;
  scope.expose("pdus_sent", pdus_);
  scope.expose("cells_built", cells_);
  scope.expose("pdus_aborted", aborted_);
  scope.expose("pdus_dropped_paused", paused_drop_);
  scope.gauge("ring_occupancy",
              [this] { return static_cast<double>(ring_.size()); });
  engine_.register_metrics(scope.sub("engine"));
  fifo_.register_metrics(scope.sub("fifo"));
  dma_.register_metrics(scope.sub("dma"));
  vcs_.for_each([this](std::uint32_t label, VcState& vs) {
    attach_vc_metrics(atm::vc_from_label(label), vs);
  });
}

bool TxPath::post(TxDescriptor descriptor) {
  if (ring_full()) return false;
  if (state_for(descriptor.vc).paused) {
    // A VC under a standing remote defect sheds new posts instead of
    // queueing unboundedly into a dead connection. Completion is
    // deferred one event so a driver that reposts from its completion
    // callback cannot reenter post() recursively.
    paused_drop_.add();
    sim_.after(0, [this, d = std::move(descriptor)] {
      if (completion_) completion_(d);
    });
    return true;
  }
  ring_.push_back(std::move(descriptor));
  maybe_stage_next();
  return true;
}

void TxPath::pause_vc(atm::VcId vc) { state_for(vc).paused = true; }

void TxPath::resume_vc(atm::VcId vc) {
  VcState& vs = state_for(vc);
  if (!vs.paused) return;
  vs.paused = false;
  schedule_emission();
  maybe_stage_next();
}

bool TxPath::vc_paused(atm::VcId vc) const {
  const VcState* vs = vcs_.find(atm::vc_label(vc)).value;
  return vs != nullptr && vs->paused;
}

void TxPath::unwedge_engine() {
  if (!wedged_) return;
  wedged_ = false;
  schedule_emission();
  maybe_stage_next();
}

bool TxPath::has_runnable_work() const {
  if (!control_.empty()) return true;
  const sim::Time now = sim_.now();
  if (vcs_.any_of([now](std::uint32_t, const VcState& vs) {
        if (vs.paused || vs.queue.empty()) return false;
        if (vs.shaper && !vs.shaper->conforms(now)) return false;
        return true;
      })) {
    return true;
  }
  // A stageable descriptor waiting while the staging pipeline sits idle
  // also counts: a wedge can strand work before it reaches a VC queue.
  if (staging_inflight_ == 0 && staged_count_ < config_.staged_pdus) {
    for (const auto& d : ring_) {
      const VcState* vs = vcs_.find(atm::vc_label(d.vc)).value;
      const bool paused = vs != nullptr && vs->paused;
      const std::size_t queued = vs != nullptr ? vs->queue.size() : 0;
      if (!paused && staging_vcs_.count(d.vc) == 0 &&
          queued < config_.staged_per_vc) {
        return true;
      }
    }
  }
  return false;
}

void TxPath::inject_cell(atm::Cell cell) {
  control_.push_back(std::move(cell));
  schedule_emission();
}

void TxPath::apply_shaper(VcState& vs) {
  if (vs.contract_pcr <= 0.0) {
    // Best-effort VC: shaped only while throttled. At full recovery the
    // shaper must be shed entirely — a rebuilt GCRA at ~line rate would
    // keep pacing (and keep the shaper-wakeup machinery in the loop)
    // forever after the congestion that installed it is gone.
    if (vs.rate_factor >= 1.0) {
      vs.shaper.reset();
      return;
    }
    vs.shaper = atm::Gcra::for_pcr(
        framer_.rate().cells_per_second() * vs.rate_factor,
        vs.contract_cdvt);
    return;
  }
  vs.shaper = atm::Gcra::for_pcr(vs.contract_pcr * vs.rate_factor,
                                 vs.contract_cdvt);
}

void TxPath::set_shaper(atm::VcId vc, double pcr_cells_per_second,
                        sim::Time cdvt) {
  VcState& vs = state_for(vc);
  vs.contract_pcr = pcr_cells_per_second;
  vs.contract_cdvt = cdvt;
  apply_shaper(vs);
}

void TxPath::clear_shaper(atm::VcId vc) {
  VcState& vs = state_for(vc);
  vs.contract_pcr = 0.0;
  vs.contract_cdvt = 0;
  apply_shaper(vs);
}

void TxPath::set_rate_factor(atm::VcId vc, double factor) {
  VcState& vs = state_for(vc);
  // Snap near-unity factors to exactly 1.0: explicit-rate feedback
  // computes er/line_rate in floating point, and a factor of 0.999…
  // would rebuild a shaper at ~line rate instead of shedding it —
  // a stale GCRA throttling a fully recovered VC forever.
  if (factor >= 1.0 - 1e-9) factor = 1.0;
  vs.rate_factor = std::clamp(factor, 1.0 / 1024, 1.0);
  apply_shaper(vs);
  // A loosened throttle may make a blocked VC eligible right now.
  schedule_emission();
}

// Staging pipeline: the engine prefetches a descriptor and runs its DMA
// while already-staged PDUs drain through the FIFO — double buffering,
// so the wire does not idle during bus transfers. Staging is skipped
// over descriptors whose VC has reached its per-VC staging quota, so a
// deep queue on one VC cannot monopolize the board's staging slots.
void TxPath::maybe_stage_next() {
  if (wedged_) return;
  if (staging_inflight_ >= config_.staging_concurrency ||
      staged_count_ + staging_inflight_ >= config_.staged_pdus) {
    return;
  }
  // Pick the oldest descriptor whose VC has a free staging quota, no
  // staging already in flight (keeps every VC's PDUs in posting order),
  // and no standing pause (a paused VC must not pin staging slots).
  auto it = std::find_if(ring_.begin(), ring_.end(),
                         [this](const TxDescriptor& d) {
                           VcState& vs = state_for(d.vc);
                           return staging_vcs_.count(d.vc) == 0 &&
                                  !vs.paused &&
                                  vs.queue.size() < config_.staged_per_vc;
                         });
  if (it == ring_.end()) return;
  ++staging_inflight_;
  staging_vcs_.insert(it->vc);
  TxDescriptor d = std::move(*it);
  ring_.erase(it);
  // Per-PDU front work: descriptor fetch + DMA programming.
  const std::uint32_t instr =
      firmware_.tx.fetch_descriptor + firmware_.tx.program_dma;
  engine_.execute(ph_fetch_, instr, [this, d = std::move(d)]() mutable {
    stage_pdu(std::move(d));
  });
}

void TxPath::stage_pdu(TxDescriptor d) {
  auto finish_staging = [this](TxDescriptor desc, aal::Bytes sdu) {
    engine_.execute(ph_trailer_, firmware_.tx.build_trailer,
                    [this, desc = std::move(desc),
                     sdu = std::move(sdu)]() mutable {
                      aal::FrameSegmenter seg(desc.aal, desc.vc);
                      StagedPdu staged;
                      staged.cells = seg.segment(sdu, desc.clp);
                      const atm::VcId vc = desc.vc;
                      staged.descriptor = std::move(desc);
                      state_for(vc).queue.push_back(std::move(staged));
                      ++staged_count_;
                      --staging_inflight_;
                      staging_vcs_.erase(vc);
                      schedule_emission();
                      maybe_stage_next();
                    });
  };

  if (config_.dma_mode == TxDmaMode::kWholePdu) {
    // Stage the whole SDU across the bus, then build the CPCS framing.
    // (Descriptor shared between the two outcomes; only one ever runs.)
    auto dsh = std::make_shared<TxDescriptor>(std::move(d));
    const bus::SgList sg = dsh->sg;
    const std::size_t len = dsh->len;
    const sim::Time issued = sim_.now();
    dma_.read(sg, 0, len,
              [this, issued, dsh, finish_staging](aal::Bytes sdu) mutable {
                // Bus time the staging transfer took; overlapped with
                // emission of already-staged PDUs, so this is exposure,
                // not serial engine time.
                profiler_.add(ph_dma_wait_, sim_.now() - issued);
                finish_staging(std::move(*dsh), std::move(sdu));
              },
              [this, dsh] {
                // Staging DMA gave up after retries: abandon the PDU
                // and free its slot; completion still fires so the
                // driver reclaims the host buffers.
                --staging_inflight_;
                staging_vcs_.erase(dsh->vc);
                aborted_.add();
                if (completion_) completion_(*dsh);
                maybe_stage_next();
              });
  } else {
    // Cut-through: segmentation is functional up front (the bytes are
    // already in host memory); the bus is charged one 48-octet transfer
    // per cell as emission walks the PDU.
    aal::Bytes sdu = memory_.gather(d.sg, d.len);
    finish_staging(std::move(d), std::move(sdu));
  }
}

// Round-robin, shaping-aware emission: one cell per grant, rotating
// across VCs with staged cells. Re-armed by staging completions, FIFO
// space, engine completions and shaper timers.
void TxPath::schedule_emission() {
  if (emit_busy_ || wedged_) return;
  if (fifo_.full()) {
    if (!fifo_wait_armed_) {
      fifo_wait_armed_ = true;
      fifo_stall_since_ = sim_.now();
      fifo_.wait_space([this] {
        fifo_wait_armed_ = false;
        // Line-rate backpressure: the engine sat on a built cell the
        // whole time the FIFO stayed full.
        profiler_.add(ph_stall_, sim_.now() - fifo_stall_since_);
        schedule_emission();
      });
    }
    return;
  }
  // Control cells (OAM/RM) first: tiny, latency-sensitive, unshaped.
  if (!control_.empty()) {
    emit_busy_ = true;
    atm::Cell cell = std::move(control_.front());
    control_.pop_front();
    engine_.execute(ph_header_, firmware_.tx.cell_overhead,
                    [this, cell = std::move(cell)]() mutable {
                      cell.meta.created = sim_.now();
                      cell.meta.seq = next_seq_++;
                      cells_.add();
                      // Priority lane: the control cell takes the next
                      // wire slot, ahead of queued user cells.
                      fifo_.push_front(std::move(cell));
                      emit_busy_ = false;
                      schedule_emission();
                    });
    return;
  }
  if (rr_.empty()) return;

  const sim::Time now = sim_.now();
  sim::Time earliest = sim::kTimeNever;
  for (std::size_t i = 0; i < rr_.size(); ++i) {
    const std::size_t idx = (rr_pos_ + i) % rr_.size();
    VcState& vs = vc_state(rr_[idx]);
    if (vs.queue.empty() || vs.paused) continue;
    if (vs.shaper && !vs.shaper->conforms(now)) {
      earliest = std::min(earliest, vs.shaper->eligible_at());
      continue;
    }
    rr_pos_ = (idx + 1) % rr_.size();
    emit_one(rr_[idx]);
    return;
  }
  if (earliest != sim::kTimeNever && earliest > now) {
    // Everything pending is shaper-blocked; wake at first eligibility.
    if (shaper_wakeup_at_ > earliest) {
      sim_.cancel(shaper_wakeup_);
      shaper_wakeup_at_ = earliest;
      shaper_wakeup_ = sim_.at(earliest, [this] {
        shaper_wakeup_at_ = sim::kTimeNever;
        schedule_emission();
      });
    }
  }
}

void TxPath::emit_one(atm::VcId vc) {
  emit_busy_ = true;
  VcState& vs = vc_state(vc);
  StagedPdu& pdu = vs.queue.front();
  const TxDescriptor& d = pdu.descriptor;
  const std::size_t next = pdu.next;
  const proc::CellPosition pos{next == 0, next + 1 == pdu.cells.size()};
  const std::uint32_t instr =
      proc::tx_cell_instructions(firmware_, d.aal, pos);
  // One engine occupancy, two budget lines: header/bookkeeping vs the
  // software-CRC share (zero with the CRC offload).
  const std::uint32_t crc_instr =
      proc::tx_cell_crc_instructions(firmware_, d.aal);
  profiler_.add(ph_header_, engine_.cost(instr - crc_instr));
  if (crc_instr > 0) profiler_.add(ph_crc_, engine_.cost(crc_instr));

  // Per-cell DMA window (cut-through mode only).
  const std::size_t per_cell = aal::payload_per_cell(d.aal);
  const std::size_t off = next * per_cell;
  const std::size_t dma_len =
      off < d.len ? std::min(per_cell, d.len - off) : 0;
  const bool per_cell_dma =
      config_.dma_mode == TxDmaMode::kPerCell && dma_len > 0;

  auto push_cell = [this, vc]() mutable {
    VcState& vs = vc_state(vc);
    StagedPdu& pdu = vs.queue.front();
    atm::Cell cell = pdu.cells[pdu.next];
    cell.meta.created = sim_.now();
    cell.meta.seq = next_seq_++;
    cells_.add();
    if (vs.m_cells) vs.m_cells->add();
    fifo_.push(std::move(cell));  // scheduler checked space; cannot drop
    if (vs.shaper) vs.shaper->commit(sim_.now());
    ++pdu.next;
    if (pdu.next < pdu.cells.size()) {
      emit_busy_ = false;
      schedule_emission();
      return;
    }
    // Last cell handed over: per-PDU completion work.
    TxDescriptor done = std::move(pdu.descriptor);
    sim::Counter* m_pdus = vs.m_pdus;
    vs.queue.pop_front();
    --staged_count_;
    engine_.execute(ph_complete_, firmware_.tx.complete_pdu,
                    [this, m_pdus, done = std::move(done)] {
                      pdus_.add();
                      if (m_pdus) m_pdus->add();
                      if (completion_) completion_(done);
                      emit_busy_ = false;
                      schedule_emission();
                      maybe_stage_next();
                    });
    maybe_stage_next();
  };

  if (per_cell_dma) {
    // The payload window crosses the bus as its own transfer; cells
    // past the SDU (pad/trailer cells) cost no bus time.
    const bus::SgList sg = d.sg;
    const sim::Time issued = sim_.now();
    dma_.read(sg, off, dma_len,
              [this, instr, issued,
               push_cell = std::move(push_cell)](aal::Bytes) mutable {
                profiler_.add(ph_dma_wait_, sim_.now() - issued);
                engine_.execute(instr, std::move(push_cell));
              },
              [this, vc] {
                // Mid-PDU DMA gave up: the rest of this PDU can never
                // be cut — abandon it and move the scheduler along.
                VcState& vs = vc_state(vc);
                TxDescriptor done = std::move(vs.queue.front().descriptor);
                vs.queue.pop_front();
                --staged_count_;
                aborted_.add();
                if (completion_) completion_(done);
                emit_busy_ = false;
                schedule_emission();
                maybe_stage_next();
              });
    return;
  }
  engine_.execute(instr, std::move(push_cell));
}

}  // namespace hni::nic
