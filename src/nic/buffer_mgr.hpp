// On-board reassembly buffer manager.
//
// The receive side stores in-progress PDUs in board memory organized as
// linked chains of fixed-size containers (a container holds a number of
// 48-octet cell payloads plus its valid bitmap) — the organization the
// host-interface literature of the period converged on for variable-size
// frames with random access. Functional payload bytes live in the AAL
// reassembler; this class is the *resource* model: it accounts container
// occupancy, refuses allocations when the pool is exhausted (which the
// RX path turns into a dropped PDU), and reports high-water marks so
// experiments can size board memory.

#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "atm/cell.hpp"
#include "sim/flat_table.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hni::nic {

struct BoardMemoryConfig {
  std::size_t containers = 2048;      // pool size
  std::size_t cells_per_container = 32;
  std::size_t container_overhead_bytes = 4;  // valid bitmap + link

  std::size_t container_bytes() const {
    return cells_per_container * atm::kPayloadSize +
           container_overhead_bytes;
  }
  std::size_t total_bytes() const { return containers * container_bytes(); }
};

/// Tracks container chains keyed by an opaque chain id (the RX path uses
/// the VC; the TX path a staging id).
class BoardMemory {
 public:
  BoardMemory(sim::Simulator& sim, BoardMemoryConfig config)
      : sim_(sim), config_(config) {}

  /// Accounts one more cell on `chain`; allocates a container when the
  /// chain's tail is full. Returns false — without accounting the cell —
  /// when the pool is exhausted.
  bool add_cell(std::uint64_t chain);

  /// Releases the chain's containers (PDU delivered or abandoned).
  void release(std::uint64_t chain);

  /// Containers a chain currently holds.
  std::size_t chain_containers(std::uint64_t chain) const;

  // --- fault hooks ------------------------------------------------------
  /// Squeezes the pool: allocations refuse once `containers` are in use
  /// (models board memory claimed by diagnostics/another function).
  /// Already-allocated containers above the limit stay valid until
  /// released. No-op restriction beyond the configured pool size.
  void set_capacity_limit(std::size_t containers);
  /// Restores the full configured pool.
  void clear_capacity_limit() { limit_ = config_.containers; }
  /// Pool size allocations are currently checked against.
  std::size_t effective_containers() const {
    return std::min(limit_, config_.containers);
  }

  std::size_t containers_in_use() const { return in_use_; }
  std::size_t containers_free() const {
    const std::size_t cap = effective_containers();
    return in_use_ >= cap ? 0 : cap - in_use_;
  }
  double mean_in_use() const { return usage_.mean(sim_.now()); }
  double peak_in_use() const { return usage_.max(); }
  std::uint64_t alloc_failures() const { return failures_.value(); }
  /// Cumulative container allocations / releases. Conservation:
  /// allocated() == released() + containers_in_use(), always.
  std::uint64_t allocated() const { return allocated_.value(); }
  std::uint64_t released() const { return released_.value(); }
  const BoardMemoryConfig& config() const { return config_; }

 private:
  struct Chain {
    std::size_t containers = 0;
    std::size_t cells_in_tail = 0;
  };

  sim::Simulator& sim_;
  BoardMemoryConfig config_;
  // Open-addressing map: the RX path touches a chain per cell, so the
  // lookup shares the data plane's cache-compact table (arena-pooled,
  // erase leaves no tombstones under per-PDU churn).
  sim::FlatMap<std::uint64_t, Chain> chains_;
  std::size_t in_use_ = 0;
  std::size_t limit_ = static_cast<std::size_t>(-1);
  sim::TimeWeightedStat usage_;
  sim::Counter failures_;
  sim::Counter allocated_;
  sim::Counter released_;
};

}  // namespace hni::nic
