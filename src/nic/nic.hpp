// The assembled host-network interface.
//
// One Nic owns a transmit path and a receive path sharing the host bus
// and host memory, configured by a single NicConfig. This is the unit a
// scenario instantiates per host; core::Testbed wires Nics to links and
// switches.

#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "nic/rx_path.hpp"
#include "nic/tx_path.hpp"
#include "sim/flat_table.hpp"
#include "sim/trace.hpp"

namespace hni::nic {

/// Closed-loop congestion control: EFCI marks observed on RX turn into
/// backward RM cells; RM cells received on TX VCs throttle the source
/// multiplicatively and recover after a quiet period. Disabled by
/// default — the overload plane is opt-in (bench_r3 is the consumer).
struct CongestionControlConfig {
  bool enabled = false;
  /// EFCI marks on a VC within `window` that trigger one backward RM.
  std::uint32_t marks_per_rm = 8;
  sim::Time window = sim::microseconds(250);
  /// Minimum gap between RM cells per VC (paces the backward stream).
  sim::Time rm_min_gap = sim::microseconds(250);
  /// Multiplicative decrease applied per congestion RM received.
  double decrease = 0.75;
  /// Multiplicative increase applied per quiet recovery period.
  double increase = 1.5;
  double min_rate_factor = 1.0 / 64;
  /// RM-free time on a throttled VC before the rate steps back up.
  sim::Time recovery_period = sim::milliseconds(1);
  /// Converge the shaper to the explicit rate carried in backward RM
  /// cells (the ERICA loop: each switch on the path stamps the min of
  /// its grant, so the source lands on its max-min fair share directly)
  /// instead of the blind multiplicative decrease. RM cells without an
  /// ER stamp still apply the binary CI behaviour above.
  bool explicit_rate = false;
};

/// OAM F5 continuity checking (I.610): while a VC is CC-activated, the
/// source injects a periodic heartbeat cell and the sink declares
/// loss-of-continuity (LOC) when *nothing* — data, OAM or RM — arrives
/// for loss_multiplier periods. A standing AIS suppresses the LOC
/// declaration: the defect is already alarmed hop-by-hop, and LOC would
/// double-report the same failure to the protection plane.
struct ContinuityCheckConfig {
  bool enabled = false;
  /// Heartbeat injection period per CC-activated VC.
  sim::Time period = sim::microseconds(200);
  /// Silence threshold, in periods, before LOC is declared.
  double loss_multiplier = 3.5;
  /// How long one received AIS cell suppresses LOC declaration.
  sim::Time ais_hold = sim::milliseconds(2);
};

struct NicConfig {
  TxPathConfig tx{};
  RxPathConfig rx{};
  proc::FirmwareProfile firmware{};
  atm::LineRate line = atm::sts3c();

  /// While loss-of-signal stands on the receive link, an AIS cell is
  /// inserted into the RX stream per open VC on this period (I.610
  /// nominal is one per second; compressed for simulation timescales).
  /// 0 disables alarm insertion (recovery off).
  sim::Time ais_period = sim::microseconds(500);
  /// An RDI-paused VC resumes this long after the last RDI cell —
  /// alarm clears when the defect indications stop arriving.
  sim::Time rdi_hold = sim::milliseconds(2);
  /// Closed-loop EFCI/RM congestion control (off by default).
  CongestionControlConfig congestion{};
  /// Per-VC OAM continuity checking (off by default).
  ContinuityCheckConfig cc{};

  /// Applies one engine clock to both sides (convenience for sweeps).
  NicConfig& with_clock(double hz) {
    tx.engine.clock_hz = hz;
    rx.engine.clock_hz = hz;
    return *this;
  }
};

class Nic {
 public:
  Nic(sim::Simulator& sim, bus::Bus& bus, bus::HostMemory& memory,
      NicConfig config);

  TxPath& tx() { return *tx_; }
  RxPath& rx() { return *rx_; }
  const TxPath& tx() const { return *tx_; }
  const RxPath& rx() const { return *rx_; }

  /// Opens `vc` in both directions with the given AAL.
  void open_vc(atm::VcId vc, aal::AalType aal) {
    rx_->open_vc(vc, aal);
    open_vcs_.push_back(vc);
  }

  /// Closes `vc`: tears down reassembly state, stops alarm insertion
  /// for it (a closed VC must not receive AIS cells), abandons any
  /// loopback still outstanding on it, and clears a standing RDI pause
  /// — per-VC fault state must not outlive the connection.
  void close_vc(atm::VcId vc);

  /// Connects the transmit framer to an outgoing link and starts it.
  void attach_tx(net::Link& link);

  /// Connects an incoming link: sets its sink to the RX path and
  /// registers this NIC's loss-of-signal detector as a state observer
  /// (link down -> AIS insertion -> RDI reply upstream).
  void attach_rx(net::Link& link);

  // --- OAM fault management -------------------------------------------
  /// Fires when a loopback response returns: (vc, tag, round-trip time).
  using LoopbackHandler =
      std::function<void(atm::VcId, std::uint64_t, sim::Time)>;
  void set_loopback_handler(LoopbackHandler handler) {
    loopback_handler_ = std::move(handler);
  }
  /// Sends an OAM loopback request on `vc` (the far-end Nic answers
  /// automatically).
  void send_loopback(atm::VcId vc, std::uint64_t tag);

  // --- continuity checking (OAM F5 CC) --------------------------------
  /// Which defect a DefectObserver is reporting.
  enum class Defect : std::uint8_t {
    kLoc,  // loss of continuity (CC silence threshold crossed)
    kAis,  // alarm indication signal standing on the VC
    kRdi,  // remote defect indication standing on the VC
  };
  /// Fires on every defect edge (active = declared, !active = cleared)
  /// of a CC-monitored VC — the signaling agent's protection trigger.
  using DefectObserver = std::function<void(atm::VcId, Defect, bool)>;
  void add_defect_observer(DefectObserver observer) {
    defect_observers_.push_back(std::move(observer));
  }
  /// Activates CC on `vc` (no-op unless config().cc.enabled): starts
  /// the heartbeat source and the sink-side LOC detector.
  void start_cc(atm::VcId vc);
  /// Deactivates CC on `vc`; a standing LOC is cleared (and counted in
  /// cc_loss_cleared, so the declare/clear books keep balancing).
  void stop_cc(atm::VcId vc);
  std::uint64_t cc_cells_sent() const { return cc_sent_; }
  std::uint64_t cc_cells_received() const { return cc_received_; }
  std::uint64_t cc_loss_declared() const { return cc_declared_; }
  std::uint64_t cc_loss_cleared() const { return cc_cleared_; }
  /// VCs currently CC-activated; never exceeds the open VC count.
  std::size_t cc_monitored() const { return cc_.size(); }
  /// LOC alarms standing right now. Conservation (the auditor checks
  /// it): declared == cleared + standing.
  std::size_t cc_loss_standing() const {
    std::size_t n = 0;
    cc_.for_each([&n](std::uint32_t, const CcVc& st) {
      if (st.loc) ++n;
    });
    return n;
  }
  /// Whether LOC currently stands on `vc`.
  bool cc_loss(atm::VcId vc) const {
    const CcVc* st = cc_.find(atm::vc_label(vc)).value;
    return st != nullptr && st->loc;
  }

  /// Attaches a tracer: LOC declare/clear edges emit kOamCc events
  /// tagged `name`.
  void set_tracer(sim::Tracer* tracer, const std::string& name) {
    tracer_ = tracer;
    trace_source_ = tracer ? tracer->intern(name) : 0;
  }

  std::uint64_t loopbacks_sent() const { return loopbacks_sent_; }
  std::uint64_t loopbacks_answered() const { return loopbacks_answered_; }
  std::uint64_t loopbacks_completed() const { return loopbacks_completed_; }
  /// Requests abandoned because their VC closed before the reply came.
  std::uint64_t loopbacks_abandoned() const { return loopbacks_abandoned_; }
  /// Requests still awaiting a reply. Conservation (the auditor checks
  /// it): sent == completed + abandoned + outstanding.
  std::size_t loopbacks_outstanding() const {
    return outstanding_loopbacks_.size();
  }
  /// VCs currently held in RDI pause; never exceeds the open VC count.
  std::size_t rdi_pending() const { return rdi_until_.size(); }
  std::size_t open_vc_count() const { return open_vcs_.size(); }

  // --- alarm statistics -----------------------------------------------
  /// Loss-of-signal currently standing on the receive link.
  bool los() const { return los_; }
  std::uint64_t los_events() const { return los_events_; }
  /// AIS cells this NIC inserted into its own RX stream under LOS.
  std::uint64_t ais_inserted() const { return ais_inserted_; }
  std::uint64_t ais_received() const { return ais_received_; }
  std::uint64_t rdi_sent() const { return rdi_sent_; }
  std::uint64_t rdi_received() const { return rdi_received_; }

  // --- congestion control (EFCI -> RM -> throttle) --------------------
  /// Fires whenever a VC's TX rate factor changes (throttle or
  /// recovery); the Host surfaces this to applications.
  using CongestionHandler = std::function<void(atm::VcId, double)>;
  void set_congestion_handler(CongestionHandler handler) {
    congestion_handler_ = std::move(handler);
  }
  /// Backward RM cells this NIC generated from observed EFCI marks.
  std::uint64_t rm_cells_sent() const { return rm_sent_; }
  /// RM cells received and handled by the controller.
  std::uint64_t rm_cells_received() const { return rm_received_; }
  /// Times a congestion RM tightened a VC's rate factor.
  std::uint64_t congestion_throttle_events() const {
    return throttle_events_;
  }
  /// Quiet-period steps that loosened a throttle back toward 1.0.
  std::uint64_t congestion_recoveries() const { return recoveries_; }
  /// The TX rate factor currently applied to `vc` (1.0 = unthrottled).
  double vc_rate_factor(atm::VcId vc) const {
    return tx_->rate_factor(vc);
  }

  const NicConfig& config() const { return config_; }

  /// Surfaces both paths' books plus the NIC's OAM/alarm statistics
  /// under `scope` ("tx.…", "rx.…", "oam.…").
  void register_metrics(const sim::MetricScope& scope) {
    tx_->register_metrics(scope.sub("tx"));
    rx_->register_metrics(scope.sub("rx"));
    const sim::MetricScope oam = scope.sub("oam");
    oam.gauge("los_events",
              [this] { return static_cast<double>(los_events_); });
    oam.gauge("ais_inserted",
              [this] { return static_cast<double>(ais_inserted_); });
    oam.gauge("ais_received",
              [this] { return static_cast<double>(ais_received_); });
    oam.gauge("rdi_sent", [this] { return static_cast<double>(rdi_sent_); });
    oam.gauge("rdi_received",
              [this] { return static_cast<double>(rdi_received_); });
    oam.gauge("loopbacks_completed",
              [this] { return static_cast<double>(loopbacks_completed_); });
    const sim::MetricScope cong = scope.sub("congestion");
    cong.gauge("rm_sent", [this] { return static_cast<double>(rm_sent_); });
    cong.gauge("rm_received",
               [this] { return static_cast<double>(rm_received_); });
    cong.gauge("throttle_events",
               [this] { return static_cast<double>(throttle_events_); });
    cong.gauge("recoveries",
               [this] { return static_cast<double>(recoveries_); });
    oam.gauge("cc_sent", [this] { return static_cast<double>(cc_sent_); });
    oam.gauge("cc_received",
              [this] { return static_cast<double>(cc_received_); });
    oam.gauge("cc_loss_declared",
              [this] { return static_cast<double>(cc_declared_); });
    oam.gauge("cc_loss_cleared",
              [this] { return static_cast<double>(cc_cleared_); });
  }

 private:
  /// A loopback awaiting its reply. Tagged with the VC so close_vc can
  /// sweep the requests a dying connection will never answer (keyed by
  /// tag alone, the old table could not find them — they leaked).
  struct PendingLoopback {
    atm::VcId vc{};
    sim::Time sent = 0;
  };

  /// Per-VC congestion-control state, shared between the receiver role
  /// (EFCI observation -> RM generation) and the sender role (RM
  /// reception -> throttle) since a duplex VC plays both.
  struct CongestionVc {
    // receiver side
    std::uint32_t marks = 0;          // EFCI marks in the current window
    sim::Time window_start = 0;
    sim::Time last_rm_sent = 0;
    bool rm_ever_sent = false;
    // sender side
    double rate_factor = 1.0;
    sim::Time last_congestion = 0;
    bool recovery_armed = false;      // a recovery timer is pending
  };

  /// Per-VC continuity-check state: heartbeat source + LOC sink.
  struct CcVc {
    atm::VcId vc{};
    sim::Time last_arrival = 0;  // any cell on the VC resets this
    sim::Time ais_until = 0;     // AIS-hold deadline
    bool ais_standing = false;
    bool loc = false;            // loss-of-continuity declared
    std::uint64_t epoch = 0;     // invalidates stale heartbeat timers
  };

  void on_oam(atm::VcId vc, const atm::OamCell& oam);
  void on_activity(atm::VcId vc);
  void cc_tick(atm::VcId vc, std::uint64_t epoch);
  void notify_defect(atm::VcId vc, Defect defect, bool active);
  void trace_cc(atm::VcId vc, bool declared);
  void on_efci(atm::VcId vc);
  void on_rm(atm::VcId vc, const atm::Cell& cell);
  void schedule_recovery(atm::VcId vc);
  void on_link_state(bool down);
  void insert_ais();
  void schedule_rdi_resume(atm::VcId vc);

  NicConfig config_;
  sim::Simulator* sim_ = nullptr;
  std::unique_ptr<TxPath> tx_;
  std::unique_ptr<RxPath> rx_;
  LoopbackHandler loopback_handler_;
  sim::FlatMap<std::uint64_t, PendingLoopback> outstanding_loopbacks_;
  std::uint64_t loopbacks_sent_ = 0;
  std::uint64_t loopbacks_answered_ = 0;
  std::uint64_t loopbacks_completed_ = 0;
  std::uint64_t loopbacks_abandoned_ = 0;

  std::vector<atm::VcId> open_vcs_;
  bool los_ = false;
  std::uint64_t ais_epoch_ = 0;  // invalidates stale AIS timers
  // RDI hold deadline per paused VC, keyed on the packed VC label.
  sim::FlatMap<std::uint32_t, sim::Time> rdi_until_;
  std::uint64_t los_events_ = 0;
  std::uint64_t ais_inserted_ = 0;
  std::uint64_t ais_received_ = 0;
  std::uint64_t rdi_sent_ = 0;
  std::uint64_t rdi_received_ = 0;

  // Continuity-check state, keyed on the packed VC label.
  sim::FlatMap<std::uint32_t, CcVc> cc_;
  std::vector<DefectObserver> defect_observers_;
  std::uint64_t cc_sent_ = 0;
  std::uint64_t cc_received_ = 0;
  std::uint64_t cc_declared_ = 0;
  std::uint64_t cc_cleared_ = 0;
  sim::Tracer* tracer_ = nullptr;
  std::uint16_t trace_source_ = 0;

  // Congestion-control state, keyed on the packed VC label.
  sim::FlatMap<std::uint32_t, CongestionVc> congestion_;
  CongestionHandler congestion_handler_;
  std::uint64_t rm_sent_ = 0;
  std::uint64_t rm_received_ = 0;
  std::uint64_t throttle_events_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace hni::nic
