// The assembled host-network interface.
//
// One Nic owns a transmit path and a receive path sharing the host bus
// and host memory, configured by a single NicConfig. This is the unit a
// scenario instantiates per host; core::Testbed wires Nics to links and
// switches.

#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "nic/rx_path.hpp"
#include "nic/tx_path.hpp"
#include "sim/flat_table.hpp"

namespace hni::nic {

struct NicConfig {
  TxPathConfig tx{};
  RxPathConfig rx{};
  proc::FirmwareProfile firmware{};
  atm::LineRate line = atm::sts3c();

  /// While loss-of-signal stands on the receive link, an AIS cell is
  /// inserted into the RX stream per open VC on this period (I.610
  /// nominal is one per second; compressed for simulation timescales).
  /// 0 disables alarm insertion (recovery off).
  sim::Time ais_period = sim::microseconds(500);
  /// An RDI-paused VC resumes this long after the last RDI cell —
  /// alarm clears when the defect indications stop arriving.
  sim::Time rdi_hold = sim::milliseconds(2);

  /// Applies one engine clock to both sides (convenience for sweeps).
  NicConfig& with_clock(double hz) {
    tx.engine.clock_hz = hz;
    rx.engine.clock_hz = hz;
    return *this;
  }
};

class Nic {
 public:
  Nic(sim::Simulator& sim, bus::Bus& bus, bus::HostMemory& memory,
      NicConfig config);

  TxPath& tx() { return *tx_; }
  RxPath& rx() { return *rx_; }
  const TxPath& tx() const { return *tx_; }
  const RxPath& rx() const { return *rx_; }

  /// Opens `vc` in both directions with the given AAL.
  void open_vc(atm::VcId vc, aal::AalType aal) {
    rx_->open_vc(vc, aal);
    open_vcs_.push_back(vc);
  }

  /// Closes `vc`: tears down reassembly state, stops alarm insertion
  /// for it (a closed VC must not receive AIS cells), abandons any
  /// loopback still outstanding on it, and clears a standing RDI pause
  /// — per-VC fault state must not outlive the connection.
  void close_vc(atm::VcId vc);

  /// Connects the transmit framer to an outgoing link and starts it.
  void attach_tx(net::Link& link);

  /// Connects an incoming link: sets its sink to the RX path and
  /// registers this NIC's loss-of-signal detector as a state observer
  /// (link down -> AIS insertion -> RDI reply upstream).
  void attach_rx(net::Link& link);

  // --- OAM fault management -------------------------------------------
  /// Fires when a loopback response returns: (vc, tag, round-trip time).
  using LoopbackHandler =
      std::function<void(atm::VcId, std::uint64_t, sim::Time)>;
  void set_loopback_handler(LoopbackHandler handler) {
    loopback_handler_ = std::move(handler);
  }
  /// Sends an OAM loopback request on `vc` (the far-end Nic answers
  /// automatically).
  void send_loopback(atm::VcId vc, std::uint64_t tag);

  std::uint64_t loopbacks_sent() const { return loopbacks_sent_; }
  std::uint64_t loopbacks_answered() const { return loopbacks_answered_; }
  std::uint64_t loopbacks_completed() const { return loopbacks_completed_; }
  /// Requests abandoned because their VC closed before the reply came.
  std::uint64_t loopbacks_abandoned() const { return loopbacks_abandoned_; }
  /// Requests still awaiting a reply. Conservation (the auditor checks
  /// it): sent == completed + abandoned + outstanding.
  std::size_t loopbacks_outstanding() const {
    return outstanding_loopbacks_.size();
  }
  /// VCs currently held in RDI pause; never exceeds the open VC count.
  std::size_t rdi_pending() const { return rdi_until_.size(); }
  std::size_t open_vc_count() const { return open_vcs_.size(); }

  // --- alarm statistics -----------------------------------------------
  /// Loss-of-signal currently standing on the receive link.
  bool los() const { return los_; }
  std::uint64_t los_events() const { return los_events_; }
  /// AIS cells this NIC inserted into its own RX stream under LOS.
  std::uint64_t ais_inserted() const { return ais_inserted_; }
  std::uint64_t ais_received() const { return ais_received_; }
  std::uint64_t rdi_sent() const { return rdi_sent_; }
  std::uint64_t rdi_received() const { return rdi_received_; }

  const NicConfig& config() const { return config_; }

  /// Surfaces both paths' books plus the NIC's OAM/alarm statistics
  /// under `scope` ("tx.…", "rx.…", "oam.…").
  void register_metrics(const sim::MetricScope& scope) {
    tx_->register_metrics(scope.sub("tx"));
    rx_->register_metrics(scope.sub("rx"));
    const sim::MetricScope oam = scope.sub("oam");
    oam.gauge("los_events",
              [this] { return static_cast<double>(los_events_); });
    oam.gauge("ais_inserted",
              [this] { return static_cast<double>(ais_inserted_); });
    oam.gauge("ais_received",
              [this] { return static_cast<double>(ais_received_); });
    oam.gauge("rdi_sent", [this] { return static_cast<double>(rdi_sent_); });
    oam.gauge("rdi_received",
              [this] { return static_cast<double>(rdi_received_); });
    oam.gauge("loopbacks_completed",
              [this] { return static_cast<double>(loopbacks_completed_); });
  }

 private:
  /// A loopback awaiting its reply. Tagged with the VC so close_vc can
  /// sweep the requests a dying connection will never answer (keyed by
  /// tag alone, the old table could not find them — they leaked).
  struct PendingLoopback {
    atm::VcId vc{};
    sim::Time sent = 0;
  };

  void on_oam(atm::VcId vc, const atm::OamCell& oam);
  void on_link_state(bool down);
  void insert_ais();
  void schedule_rdi_resume(atm::VcId vc);

  NicConfig config_;
  sim::Simulator* sim_ = nullptr;
  std::unique_ptr<TxPath> tx_;
  std::unique_ptr<RxPath> rx_;
  LoopbackHandler loopback_handler_;
  sim::FlatMap<std::uint64_t, PendingLoopback> outstanding_loopbacks_;
  std::uint64_t loopbacks_sent_ = 0;
  std::uint64_t loopbacks_answered_ = 0;
  std::uint64_t loopbacks_completed_ = 0;
  std::uint64_t loopbacks_abandoned_ = 0;

  std::vector<atm::VcId> open_vcs_;
  bool los_ = false;
  std::uint64_t ais_epoch_ = 0;  // invalidates stale AIS timers
  // RDI hold deadline per paused VC, keyed on the packed VC label.
  sim::FlatMap<std::uint32_t, sim::Time> rdi_until_;
  std::uint64_t los_events_ = 0;
  std::uint64_t ais_inserted_ = 0;
  std::uint64_t ais_received_ = 0;
  std::uint64_t rdi_sent_ = 0;
  std::uint64_t rdi_received_ = 0;
};

}  // namespace hni::nic
