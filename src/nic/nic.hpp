// The assembled host-network interface.
//
// One Nic owns a transmit path and a receive path sharing the host bus
// and host memory, configured by a single NicConfig. This is the unit a
// scenario instantiates per host; core::Testbed wires Nics to links and
// switches.

#pragma once

#include <memory>
#include <unordered_map>

#include "nic/rx_path.hpp"
#include "nic/tx_path.hpp"

namespace hni::nic {

struct NicConfig {
  TxPathConfig tx{};
  RxPathConfig rx{};
  proc::FirmwareProfile firmware{};
  atm::LineRate line = atm::sts3c();

  /// Applies one engine clock to both sides (convenience for sweeps).
  NicConfig& with_clock(double hz) {
    tx.engine.clock_hz = hz;
    rx.engine.clock_hz = hz;
    return *this;
  }
};

class Nic {
 public:
  Nic(sim::Simulator& sim, bus::Bus& bus, bus::HostMemory& memory,
      NicConfig config);

  TxPath& tx() { return *tx_; }
  RxPath& rx() { return *rx_; }
  const TxPath& tx() const { return *tx_; }
  const RxPath& rx() const { return *rx_; }

  /// Opens `vc` in both directions with the given AAL.
  void open_vc(atm::VcId vc, aal::AalType aal) { rx_->open_vc(vc, aal); }

  /// Connects the transmit framer to an outgoing link and starts it.
  void attach_tx(net::Link& link);

  // --- OAM fault management -------------------------------------------
  /// Fires when a loopback response returns: (vc, tag, round-trip time).
  using LoopbackHandler =
      std::function<void(atm::VcId, std::uint64_t, sim::Time)>;
  void set_loopback_handler(LoopbackHandler handler) {
    loopback_handler_ = std::move(handler);
  }
  /// Sends an OAM loopback request on `vc` (the far-end Nic answers
  /// automatically).
  void send_loopback(atm::VcId vc, std::uint64_t tag);

  std::uint64_t loopbacks_sent() const { return loopbacks_sent_; }
  std::uint64_t loopbacks_answered() const { return loopbacks_answered_; }
  std::uint64_t loopbacks_completed() const { return loopbacks_completed_; }

  const NicConfig& config() const { return config_; }

 private:
  void on_oam(atm::VcId vc, const atm::OamCell& oam);

  NicConfig config_;
  sim::Simulator* sim_ = nullptr;
  std::unique_ptr<TxPath> tx_;
  std::unique_ptr<RxPath> rx_;
  LoopbackHandler loopback_handler_;
  std::unordered_map<std::uint64_t, sim::Time> outstanding_loopbacks_;
  std::uint64_t loopbacks_sent_ = 0;
  std::uint64_t loopbacks_answered_ = 0;
  std::uint64_t loopbacks_completed_ = 0;
};

}  // namespace hni::nic
