#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace hni::sim {

std::string format_time(Time t) {
  const bool negative = t < 0;
  const double ps = static_cast<double>(negative ? -t : t);
  const char* unit = "ps";
  double value = ps;
  if (ps >= 1e12) {
    unit = "s";
    value = ps / 1e12;
  } else if (ps >= 1e9) {
    unit = "ms";
    value = ps / 1e9;
  } else if (ps >= 1e6) {
    unit = "us";
    value = ps / 1e6;
  } else if (ps >= 1e3) {
    unit = "ns";
    value = ps / 1e3;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s%.4g %s", negative ? "-" : "", value,
                unit);
  return buf;
}

}  // namespace hni::sim
