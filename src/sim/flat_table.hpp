// Cache-compact per-connection state storage: open-addressing index +
// chunked slot arena.
//
// The data plane looks up per-VC state on every cell; at millions of
// VCs a node-based map spends the cell budget chasing pointers and the
// allocator. This header provides the two pieces the hot paths share:
//
//   * SlotArena<T> — chunked object pool handing out stable 32-bit
//     handles. Chunks are fixed-size, so records never move once
//     allocated: a pointer obtained from a lookup stays valid across
//     any number of unrelated inserts (only erasing *that* record
//     invalidates it). Freed slots go on an intrusive freelist and are
//     reused, so steady-state churn allocates nothing.
//
//   * FlatMap<Key, T> — robin-hood linear-probing hash index from a
//     packed integer label to an arena handle. Power-of-two capacity,
//     strong 64-bit finalizer (splitmix64) so sequential VCI/port
//     allocation cannot probe-cluster, and backward-shift deletion —
//     no tombstones, so probe distances never rot under churn. The
//     index slot is 12-16 bytes; at the 7/8 load ceiling the whole
//     structure costs well under 128 bytes per entry for typical
//     per-VC records.
//
// Iteration comes in two flavours with different contracts:
//   * for_each / any_of: slot order (hash order). Deterministic for a
//     same-seed run but not sorted; the table must not be mutated from
//     inside the callback.
//   * for_each_sorted: ascending key order via a key snapshot, for
//     byte-deterministic audits and snapshots. The callback may erase
//     entries (including the current one) and insert new ones; erased
//     entries are skipped, entries inserted during the walk are not
//     visited.

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace hni::sim {

/// splitmix64 finalizer: a full-avalanche 64-bit mixer. Every bit of
/// the input affects every bit of the output, so keys differing only
/// in high bits (the port field of a packed route label) land in
/// unrelated buckets.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Chunked object pool with stable addresses and 32-bit handles.
template <typename T>
class SlotArena {
 public:
  static constexpr std::uint32_t kNullHandle = 0xFFFFFFFFu;

  SlotArena() = default;
  SlotArena(const SlotArena&) = delete;
  SlotArena& operator=(const SlotArena&) = delete;
  SlotArena(SlotArena&&) = default;
  SlotArena& operator=(SlotArena&&) = default;
  ~SlotArena() { clear(); }

  /// Constructs a T in a free slot and returns its handle.
  template <typename... Args>
  std::uint32_t alloc(Args&&... args) {
    if (free_head_ == kNullHandle) grow();
    const std::uint32_t h = free_head_;
    Slot& s = slot(h);
    // Construct before unlinking: a throwing constructor leaves the
    // freelist (and the arena's books) untouched.
    ::new (static_cast<void*>(s.storage)) T(std::forward<Args>(args)...);
    free_head_ = s.next_free;
    s.live = true;
    ++size_;
    return h;
  }

  /// Destroys the record and recycles its slot.
  void free(std::uint32_t h) {
    Slot& s = slot(h);
    get(s)->~T();
    s.live = false;
    s.next_free = free_head_;
    free_head_ = h;
    --size_;
  }

  T& operator[](std::uint32_t h) { return *get(slot(h)); }
  const T& operator[](std::uint32_t h) const { return *get(slot(h)); }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return chunks_.size() << kChunkShift; }

  /// Bytes held by the arena (capacity, not just live records).
  std::size_t memory_bytes() const {
    return chunks_.size() * (std::size_t{1} << kChunkShift) * sizeof(Slot);
  }

  void clear() {
    for (auto& chunk : chunks_) {
      for (std::uint32_t i = 0; i < kChunkSlots; ++i) {
        if (chunk[i].live) {
          get(chunk[i])->~T();
          chunk[i].live = false;
        }
      }
    }
    chunks_.clear();
    free_head_ = kNullHandle;
    size_ = 0;
  }

 private:
  static constexpr std::uint32_t kChunkShift = 8;  // 256 slots per chunk
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSlots - 1;

  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    std::uint32_t next_free = kNullHandle;
    bool live = false;
  };

  Slot& slot(std::uint32_t h) { return chunks_[h >> kChunkShift][h & kChunkMask]; }
  const Slot& slot(std::uint32_t h) const {
    return chunks_[h >> kChunkShift][h & kChunkMask];
  }
  static T* get(Slot& s) { return std::launder(reinterpret_cast<T*>(s.storage)); }
  static const T* get(const Slot& s) {
    return std::launder(reinterpret_cast<const T*>(s.storage));
  }

  void grow() {
    const std::uint32_t base =
        static_cast<std::uint32_t>(chunks_.size()) << kChunkShift;
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
    // Thread the new slots in ascending handle order so allocation
    // order (and therefore any handle-ordered walk) is deterministic.
    Slot* chunk = chunks_.back().get();
    for (std::uint32_t i = kChunkSlots; i-- > 0;) {
      chunk[i].next_free = free_head_;
      free_head_ = base + i;
    }
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t free_head_ = kNullHandle;
  std::size_t size_ = 0;
};

/// Open-addressing map from a packed integer key to an arena-pooled
/// record. See the file comment for the iteration contracts.
template <typename Key, typename T>
class FlatMap {
  static_assert(std::is_integral_v<Key> && sizeof(Key) <= 8,
                "FlatMap keys are packed integer labels");

 public:
  struct Found {
    T* value = nullptr;
    std::uint32_t extra_probes = 0;  // displacement from the home slot
  };

  /// `expected` sizes the initial index so that many inserts need no
  /// rehash; the table still grows past it on demand.
  explicit FlatMap(std::size_t expected = 0) {
    if (expected > 0) rehash(index_capacity_for(expected));
  }

  /// Inserts, or replaces the existing record. The returned reference
  /// is arena-stable: later inserts never move it.
  T& insert(Key key, T value) {
    auto [ptr, inserted] = try_emplace(key, std::move(value));
    if (!inserted) *ptr = std::move(value);
    return *ptr;
  }

  /// Emplaces if absent; returns (record, inserted). The record pointer
  /// is stable until that key is erased.
  template <typename... Args>
  std::pair<T*, bool> try_emplace(Key key, Args&&... args) {
    if (index_.empty() || (size_ + 1) * 8 > index_.size() * 7) {
      rehash(index_.empty() ? kMinCapacity : index_.size() * 2);
    }
    if (T* existing = find(key).value) return {existing, false};
    const std::uint32_t handle = arena_.alloc(std::forward<Args>(args)...);
    place(key, handle);
    ++size_;
    return {&arena_[handle], true};
  }

  Found find(Key key) {
    const ConstFound f = std::as_const(*this).find(key);
    return Found{const_cast<T*>(f.value), f.extra_probes};
  }

  struct ConstFound {
    const T* value = nullptr;
    std::uint32_t extra_probes = 0;
  };
  ConstFound find(Key key) const {
    if (index_.empty()) return {};
    std::size_t i = home(key);
    for (std::uint8_t d1 = 1;; ++d1, i = (i + 1) & mask_) {
      const IndexSlot& s = index_[i];
      // An empty slot, or one holding an entry closer to its own home
      // than we are to ours, proves the key is absent (robin-hood
      // invariant) — no tombstone scanning, bounded miss cost.
      if (s.dist1 < d1) return {};
      if (s.dist1 == d1 && s.key == key) {
        return {&arena_[s.handle],
                static_cast<std::uint32_t>(d1 - 1)};
      }
    }
  }

  bool contains(Key key) const { return find(key).value != nullptr; }

  bool erase(Key key) {
    if (index_.empty()) return false;
    std::size_t i = home(key);
    for (std::uint8_t d1 = 1;; ++d1, i = (i + 1) & mask_) {
      IndexSlot& s = index_[i];
      if (s.dist1 < d1) return false;
      if (s.dist1 == d1 && s.key == key) break;
    }
    arena_.free(index_[i].handle);
    // Backward-shift deletion: slide the rest of the cluster one slot
    // toward home. Leaves no tombstones, so probe distances stay tight
    // no matter how much churn the table has seen.
    std::size_t j = (i + 1) & mask_;
    while (index_[j].dist1 > 1) {
      index_[i] = index_[j];
      --index_[i].dist1;
      i = j;
      j = (j + 1) & mask_;
    }
    index_[i].dist1 = 0;
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  std::size_t index_capacity() const { return index_.size(); }

  /// Bytes held: index array plus arena chunks. This is capacity, the
  /// honest steady-state footprint per entry.
  std::size_t memory_bytes() const {
    return index_.capacity() * sizeof(IndexSlot) + arena_.memory_bytes();
  }

  /// Slot-order walk (hash order; deterministic for a same-seed run).
  /// The callback must not mutate the table.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (const IndexSlot& s : index_) {
      if (s.dist1 != 0) fn(s.key, arena_[s.handle]);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const IndexSlot& s : index_) {
      if (s.dist1 != 0) fn(s.key, arena_[s.handle]);
    }
  }

  /// Slot-order early-exit scan: true iff fn returned true for some
  /// entry. The callback must not mutate the table.
  template <typename Fn>
  bool any_of(Fn&& fn) const {
    for (const IndexSlot& s : index_) {
      if (s.dist1 != 0 && fn(s.key, arena_[s.handle])) return true;
    }
    return false;
  }

  /// Ascending-key walk over a snapshot — byte-deterministic however
  /// the table was populated. The callback may erase entries (they are
  /// skipped if already gone) and insert new ones (not visited).
  template <typename Fn>
  void for_each_sorted(Fn&& fn) {
    std::vector<Key> keys;
    keys.reserve(size_);
    for (const IndexSlot& s : index_) {
      if (s.dist1 != 0) keys.push_back(s.key);
    }
    std::sort(keys.begin(), keys.end());
    for (const Key key : keys) {
      if (T* value = find(key).value) fn(key, *value);
    }
  }

  void clear() {
    index_.clear();
    arena_.clear();
    size_ = 0;
    mask_ = 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;  // power of two

  // dist1 = probe distance + 1; 0 marks an empty slot, so a key of 0
  // (a valid packed label) needs no sentinel.
  struct IndexSlot {
    Key key = 0;
    std::uint32_t handle = 0;
    std::uint8_t dist1 = 0;
  };

  static std::size_t index_capacity_for(std::size_t entries) {
    std::size_t cap = kMinCapacity;
    while (entries * 8 > cap * 7) cap *= 2;
    return cap;
  }

  std::size_t home(Key key) const {
    return static_cast<std::size_t>(
               mix64(static_cast<std::uint64_t>(key))) &
           mask_;
  }

  /// Robin-hood insert of an index entry (key must be absent).
  void place(Key key, std::uint32_t handle) {
    IndexSlot incoming{key, handle, 1};
    std::size_t i = home(key);
    for (;; i = (i + 1) & mask_) {
      IndexSlot& s = index_[i];
      if (s.dist1 == 0) {
        s = incoming;
        return;
      }
      if (incoming.dist1 == kMaxDist1) {
        // Pathological clustering (cannot happen with the 64-bit mixer
        // below the load ceiling, but growth restores the invariant
        // regardless of the key distribution). Checked before the swap
        // so no stored displacement ever reaches the cap — probe loops
        // terminate within a uint8 distance.
        rehash(index_.size() * 2);
        place(incoming.key, incoming.handle);
        return;
      }
      if (s.dist1 < incoming.dist1) std::swap(s, incoming);
      ++incoming.dist1;
    }
  }

  void rehash(std::size_t new_capacity) {
    std::vector<IndexSlot> old = std::move(index_);
    index_.assign(new_capacity, IndexSlot{});
    mask_ = new_capacity - 1;
    for (const IndexSlot& s : old) {
      if (s.dist1 != 0) place(s.key, s.handle);
    }
  }

  static constexpr std::uint8_t kMaxDist1 = 255;

  std::vector<IndexSlot> index_;
  SlotArena<T> arena_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace hni::sim
