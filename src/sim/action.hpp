// Small-buffer-optimized callable for the event kernel.
//
// The steady-state cell path schedules one closure per cell (link
// delivery, FIFO service, engine completion, shaper timers); wrapping
// those in std::function costs a heap allocation whenever the capture
// exceeds its tiny inline buffer — which a captured atm::Cell always
// does. sim::Action gives the kernel a move-only callable with an
// inline buffer sized for the hot-path closures (`this` + a full cell
// with metadata), so the per-cell path never touches the allocator.
// Oversized or alignment-exotic callables transparently fall back to
// the heap, preserving std::function's generality for cold paths.

#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hni::sim {

class Action {
 public:
  /// Inline capture capacity. Sized so `[this, cell]` and
  /// `[this, wire]` (a 53-octet wire cell plus simulation metadata)
  /// stay inline; sizeof(Action) stays at two cache lines.
  static constexpr std::size_t kInlineSize = 104;

  Action() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Action> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  Action(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    emplace(std::forward<F>(f));
  }

  Action(Action&& other) noexcept : ops_(other.ops_) {
    if (ops_) {
      relocate_from(other);
    }
  }

  Action& operator=(Action&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_) {
        relocate_from(other);
      }
    }
    return *this;
  }

  Action(const Action&) = delete;
  Action& operator=(const Action&) = delete;

  ~Action() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invokes the stored callable. Precondition: *this holds one.
  void operator()() { ops_->invoke(buf_); }

  /// Destroys the stored callable, leaving *this empty.
  void reset() noexcept {
    if (ops_) {
      if (ops_->destroy) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Constructs a callable directly into *this (which must be empty),
  /// skipping the intermediate Action a converting constructor plus
  /// move would cost. The kernel's scheduling fast path.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Action> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  void emplace(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-constructs dst's payload from src's and destroys src's.
    // Null when a fixed-size memcpy of the whole buffer relocates
    // correctly (trivially copyable payloads — the hot-path closures);
    // the inline copy beats an indirect call.
    void (*relocate)(void* dst, void* src) noexcept;
    // Null for trivially destructible payloads.
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* self) { (*static_cast<Fn*>(self))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static constexpr bool kTrivialRelocate =
        std::is_trivially_copyable_v<Fn> &&
        std::is_trivially_destructible_v<Fn>;
    static void destroy(void* self) noexcept {
      static_cast<Fn*>(self)->~Fn();
    }
    static constexpr Ops ops{
        &invoke, kTrivialRelocate ? nullptr : &relocate,
        std::is_trivially_destructible_v<Fn> ? nullptr : &destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn*& ptr(void* self) { return *static_cast<Fn**>(self); }
    static void invoke(void* self) { (*ptr(self))(); }
    static void destroy(void* self) noexcept { delete ptr(self); }
    // The stored pointer relocates by memcpy.
    static constexpr Ops ops{&invoke, nullptr, &destroy};
  };

  void relocate_from(Action& other) noexcept {
    if (ops_->relocate) {
      ops_->relocate(buf_, other.buf_);
    } else {
      __builtin_memcpy(buf_, other.buf_, kInlineSize);
    }
    other.ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace hni::sim
