#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace hni::sim {

void Simulator::throw_past() {
  throw std::logic_error("Simulator::at: scheduling into the past");
}

detail::EventSlot* Simulator::grow_slots() {
  if (chunk_fill_ == kChunkSize) {
    chunks_.push_back(std::make_unique<detail::EventSlot[]>(kChunkSize));
    chunk_fill_ = 0;
  }
  return &chunks_.back()[chunk_fill_++];
}

void Simulator::heap_pop_root() {
  const std::size_t n = heap_.size() - 1;
  if (n == 0) {  // drained: skip the (stack-bounced) 32-byte copy
    heap_.pop_back();
    return;
  }
  const Node last = heap_.back();
  heap_.pop_back();
  // Percolate the hole down, then drop `last` in.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

bool Simulator::skim_stale() {
  while (!heap_.empty()) {
    const Node& root = heap_.front();
    if (root.slot->gen == root.gen) return true;
    heap_pop_root();
    --stale_;
  }
  return false;
}

void Simulator::fire_root() {
  detail::EventSlot* slot = heap_.front().slot;
  const Time when = heap_.front().when;
  assert(when >= now_);
  // Move the callable out and release the slot *before* invoking: the
  // handle dies (gen bump) before user code runs, a cancel() of the
  // firing event from inside its own callback is a no-op, and a
  // self-rescheduling callback immediately reuses this same — cache-
  // hot — slot from the freelist head.
  Action action = std::move(slot->action);  // leaves the slot empty
  slot->gen++;
  slot->next_free = free_head_;
  free_head_ = slot;
  heap_pop_root();
  now_ = when;
  ++fired_;
  action();
}

bool Simulator::step() {
  if (!skim_stale()) return false;
  fire_root();
  return true;
}

std::uint64_t Simulator::run() {
  // Fused skim + fire: one root load, one slot dereference per event.
  // See fire_root() for the generation / freelist ordering commentary.
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    // Scalar field loads: copying the whole 32-byte Node makes the
    // compiler bounce it through a stack slot on the critical path.
    detail::EventSlot* slot = heap_.front().slot;
    const Time when = heap_.front().when;
    if (slot->gen != heap_.front().gen) {  // cancelled: drop the node
      heap_pop_root();
      --stale_;
      continue;
    }
    assert(when >= now_);
    Action action = std::move(slot->action);
    slot->gen++;
    slot->next_free = free_head_;
    free_head_ = slot;
    heap_pop_root();
    now_ = when;
    ++fired_;
    action();
    ++n;
  }
  return n;
}

std::uint64_t Simulator::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    detail::EventSlot* slot = heap_.front().slot;
    const Time when = heap_.front().when;
    if (slot->gen != heap_.front().gen) {
      heap_pop_root();
      --stale_;
      continue;
    }
    if (when > deadline) {
      now_ = deadline;
      return n;
    }
    assert(when >= now_);
    Action action = std::move(slot->action);
    slot->gen++;
    slot->next_free = free_head_;
    free_head_ = slot;
    heap_pop_root();
    now_ = when;
    ++fired_;
    action();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace hni::sim
