#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace hni::sim {

EventHandle Simulator::at(Time when, Action action) {
  if (when < now_) {
    throw std::logic_error("Simulator::at: scheduling into the past");
  }
  const std::uint64_t id = next_seq_;
  queue_.push(Entry{when, next_seq_, id, std::move(action)});
  ++next_seq_;
  return EventHandle{id};
}

bool Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  // An id is pending iff it was issued, has not fired, and is not already
  // cancelled. Fired ids are < next_seq_ too, so verify lazily: record the
  // id and let pop_next() drop it; report success only if it was pending.
  // Pending ids are exactly those still in the queue; we cannot probe the
  // priority queue, so track cancellations and trust callers to cancel
  // only handles they own.
  auto [it, inserted] = cancelled_ids_.insert(handle.id_);
  (void)it;
  if (inserted) ++cancelled_;
  return inserted;
}

bool Simulator::pop_next(Entry& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const; move via const_cast is the standard
    // idiom for move-out-then-pop of non-copyable payloads.
    Entry& top = const_cast<Entry&>(queue_.top());
    Entry entry = std::move(top);
    queue_.pop();
    auto it = cancelled_ids_.find(entry.id);
    if (it != cancelled_ids_.end()) {
      cancelled_ids_.erase(it);
      --cancelled_;
      continue;
    }
    out = std::move(entry);
    return true;
  }
  return false;
}

bool Simulator::step() {
  Entry entry;
  if (!pop_next(entry)) return false;
  assert(entry.when >= now_);
  now_ = entry.when;
  ++fired_;
  entry.action();
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (true) {
    Entry entry;
    if (!pop_next(entry)) break;
    if (entry.when > deadline) {
      // Put it back (cheap: re-push preserves when/seq ordering).
      queue_.push(std::move(entry));
      now_ = deadline;
      return n;
    }
    now_ = entry.when;
    ++fired_;
    ++n;
    entry.action();
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace hni::sim
