#include "sim/telemetry/profiler.hpp"

#include <stdexcept>

namespace hni::sim {

CycleProfiler::CycleProfiler(double clock_hz) : clock_hz_(clock_hz) {
  if (clock_hz <= 0) {
    throw std::invalid_argument("CycleProfiler: clock must be positive");
  }
}

CycleProfiler::PhaseId CycleProfiler::phase(const std::string& name) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].name == name) return i;
  }
  slots_.push_back({name, 0, 0});
  return slots_.size() - 1;
}

std::vector<CycleProfiler::PhaseStat> CycleProfiler::stats() const {
  std::vector<PhaseStat> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    PhaseStat p;
    p.name = s.name;
    p.items = s.items;
    p.total = s.total;
    p.cycles = to_seconds(s.total) * clock_hz_;
    if (s.items > 0) {
      p.cycles_per_item = p.cycles / static_cast<double>(s.items);
      p.time_per_item = s.total / static_cast<Time>(s.items);
    }
    out.push_back(std::move(p));
  }
  return out;
}

Time CycleProfiler::total() const {
  Time t = 0;
  for (const Slot& s : slots_) t += s.total;
  return t;
}

void CycleProfiler::reset() {
  for (Slot& s : slots_) {
    s.items = 0;
    s.total = 0;
  }
}

}  // namespace hni::sim
