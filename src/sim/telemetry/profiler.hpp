// Cycle-budget profiler: attributes engine time to named phases.
//
// The paper's evaluation is a per-cell cycle-budget table — how many
// cycles each firmware operation (header build, CRC, trailer check, …)
// spends, against the cell slot. The protocol-engine paths register a
// phase per operation (plus non-instruction phases like DMA wait and
// FIFO stall, measured as elapsed sim time) and attribute work as it
// happens; bench_o1_cycle_budget renders the resulting table.
//
// Hot path: add() is an array index plus two integer adds — no
// allocation, no lookup. Phase registration (phase()) is cold.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace hni::sim {

class CycleProfiler {
 public:
  using PhaseId = std::size_t;

  /// `clock_hz` converts attributed time to engine cycles.
  explicit CycleProfiler(double clock_hz);

  /// Registers (or finds) a phase by name; cold path.
  PhaseId phase(const std::string& name);

  /// Attributes `elapsed` to `p` across `items` work items. Hot path.
  void add(PhaseId p, Time elapsed, std::uint64_t items = 1) {
    Slot& s = slots_[p];
    s.total += elapsed;
    s.items += items;
  }

  struct PhaseStat {
    std::string name;
    std::uint64_t items = 0;
    Time total = 0;               // attributed sim time
    double cycles = 0.0;          // total, in engine cycles
    double cycles_per_item = 0.0;
    Time time_per_item = 0;
  };

  /// Per-phase totals in registration order (stable table layout).
  std::vector<PhaseStat> stats() const;

  /// Sum of attributed time across all phases.
  Time total() const;

  double clock_hz() const { return clock_hz_; }
  std::size_t phases() const { return slots_.size(); }
  void reset();

 private:
  struct Slot {
    std::string name;
    std::uint64_t items = 0;
    Time total = 0;
  };

  double clock_hz_;
  std::vector<Slot> slots_;
};

}  // namespace hni::sim
