// Metrics registry: named, hierarchically-scoped instruments.
//
// Components stop hand-rolling `sim::Counter` member soup for export:
// they register their instruments (or expose existing members) under a
// dotted scope — "station.0.alice.nic.rx.fifo.drops" — and anything
// holding the registry can enumerate every instrument in the system,
// dump it as an aligned table (core::report) or as JSON.
//
// Three instrument kinds:
//   * counters   — registry-owned (counter()) or externally-owned
//                  members surfaced by reference (expose());
//   * gauges     — a callback sampled at snapshot time (utilization,
//                  queue depth, any derived value);
//   * histograms — registry-owned, for latency-style distributions.
//
// Per-VC metrics are just scopes: a path registers each open VC under
// "<scope>.vc.<vpi>.<vci>" and the dump enumerates them like any other
// instrument.
//
// Hot-path cost: incrementing a registered counter is identical to an
// unregistered one (Counter::add — no allocation, no lookup). All
// string work happens at registration and snapshot time only.
// Snapshots are sorted by name, so two identical runs dump
// byte-identical output — the determinism tests rely on this.
//
// Lifetime: expose() and gauge() hold references into the registering
// component; the registry must not be snapshotted after a registered
// component dies. core::Testbed owns the registry alongside its
// stations and links, which satisfies this by construction.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace hni::sim {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

class MetricsRegistry {
 public:
  /// One enumerated instrument at snapshot time.
  struct Sample {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    double value = 0.0;  // counter/gauge value; histogram sample count
    const Histogram* histogram = nullptr;  // set when kind == kHistogram
  };

  /// Registry-owned counter; repeated calls with the same name return
  /// the same instrument.
  Counter& counter(const std::string& name);

  /// Registry-owned histogram; repeated calls with the same name return
  /// the same instrument (bin parameters of the first call win).
  Histogram& histogram(const std::string& name, double bin_width,
                       std::size_t bins);

  /// Surfaces an externally-owned counter (a component member) under
  /// `name`. The component must outlive every snapshot.
  void expose(const std::string& name, const Counter& c);

  /// Registers a callback gauge, sampled at snapshot time.
  void gauge(const std::string& name, std::function<double()> fn);

  /// Every instrument, sorted by name (deterministic dump order).
  std::vector<Sample> snapshot() const;

  /// Compact JSON object {"name": value, ...} in snapshot order.
  /// Histograms render as {"count":n,"p50":x,"p99":y}.
  std::string to_json(const std::string& prefix = "") const;

  std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    const Counter* counter = nullptr;      // owned or exposed
    const Histogram* histogram = nullptr;  // owned
    std::function<double()> gauge;
  };

  Entry* find(const std::string& name);

  // Deques: stable addresses across registration.
  std::deque<Counter> owned_counters_;
  std::deque<Histogram> owned_histograms_;
  std::vector<Entry> entries_;
};

/// A dotted-prefix view of a registry: Scope("nic.rx").counter("drops")
/// registers "nic.rx.drops". Cheap to copy; sub() descends a level.
class MetricScope {
 public:
  MetricScope(MetricsRegistry& registry, std::string prefix)
      : registry_(&registry), prefix_(std::move(prefix)) {}

  MetricScope sub(const std::string& name) const {
    return MetricScope(*registry_, join(name));
  }
  /// Per-VC scope: "<prefix>.vc.<vpi>.<vci>".
  MetricScope vc(std::uint32_t vpi, std::uint32_t vci) const {
    return sub("vc." + std::to_string(vpi) + "." + std::to_string(vci));
  }

  Counter& counter(const std::string& name) const {
    return registry_->counter(join(name));
  }
  Histogram& histogram(const std::string& name, double bin_width,
                       std::size_t bins) const {
    return registry_->histogram(join(name), bin_width, bins);
  }
  void expose(const std::string& name, const Counter& c) const {
    registry_->expose(join(name), c);
  }
  void gauge(const std::string& name, std::function<double()> fn) const {
    registry_->gauge(join(name), std::move(fn));
  }
  /// Surfaces a RunningStat as .count/.mean/.max gauges.
  void expose_stat(const std::string& name, const RunningStat& s) const;

  const std::string& prefix() const { return prefix_; }
  MetricsRegistry& registry() const { return *registry_; }

 private:
  std::string join(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "." + name;
  }

  MetricsRegistry* registry_;
  std::string prefix_;
};

}  // namespace hni::sim
