#include "sim/telemetry/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace hni::sim {

MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name) {
  for (Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  if (Entry* e = find(name)) {
    // Same-name re-registration returns the original instrument so two
    // components sharing a scope accumulate into one counter.
    return const_cast<Counter&>(*e->counter);
  }
  owned_counters_.emplace_back();
  entries_.push_back(
      {name, MetricKind::kCounter, &owned_counters_.back(), nullptr, {}});
  return owned_counters_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      double bin_width, std::size_t bins) {
  if (Entry* e = find(name)) {
    return const_cast<Histogram&>(*e->histogram);
  }
  owned_histograms_.emplace_back(bin_width, bins);
  entries_.push_back({name, MetricKind::kHistogram, nullptr,
                      &owned_histograms_.back(), {}});
  return owned_histograms_.back();
}

void MetricsRegistry::expose(const std::string& name, const Counter& c) {
  if (Entry* e = find(name)) {
    e->counter = &c;  // newest registration wins (re-wired component)
    e->kind = MetricKind::kCounter;
    return;
  }
  entries_.push_back({name, MetricKind::kCounter, &c, nullptr, {}});
}

void MetricsRegistry::gauge(const std::string& name,
                            std::function<double()> fn) {
  if (Entry* e = find(name)) {
    e->gauge = std::move(fn);
    e->kind = MetricKind::kGauge;
    return;
  }
  entries_.push_back({name, MetricKind::kGauge, nullptr, nullptr,
                      std::move(fn)});
}

std::size_t MetricsRegistry::size() const { return entries_.size(); }

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    Sample s;
    s.name = e.name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(e.counter->value());
        break;
      case MetricKind::kGauge:
        s.value = e.gauge ? e.gauge() : 0.0;
        break;
      case MetricKind::kHistogram:
        s.value = static_cast<double>(e.histogram->count());
        s.histogram = e.histogram;
        break;
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

namespace {

std::string format_value(double v) {
  // Integers print without a fraction so counters stay readable; the
  // %.6g fallback is deterministic for identical inputs.
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::to_json(const std::string& prefix) const {
  std::string out = "{";
  bool first = true;
  for (const Sample& s : snapshot()) {
    if (!prefix.empty() && s.name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    if (!first) out += ",";
    first = false;
    out += "\"" + s.name + "\":";
    if (s.kind == MetricKind::kHistogram) {
      out += "{\"count\":" + format_value(s.value) +
             ",\"p50\":" + format_value(s.histogram->percentile(50)) +
             ",\"p99\":" + format_value(s.histogram->percentile(99)) + "}";
    } else {
      out += format_value(s.value);
    }
  }
  out += "}";
  return out;
}

void MetricScope::expose_stat(const std::string& name,
                              const RunningStat& s) const {
  const RunningStat* stat = &s;
  gauge(name + ".count",
        [stat] { return static_cast<double>(stat->count()); });
  gauge(name + ".mean", [stat] { return stat->mean(); });
  gauge(name + ".max", [stat] { return stat->max(); });
}

}  // namespace hni::sim
