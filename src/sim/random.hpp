// Deterministic random-number utilities for experiments.
//
// Every stochastic element of a scenario (traffic arrival processes,
// loss processes, payload fill) draws from an Rng seeded explicitly by
// the experiment, so runs are bit-reproducible.

#pragma once

#include <cstdint>
#include <random>

namespace hni::sim {

/// A seedable random source with the distributions the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : gen_(seed) {}

  /// Uniform in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }

  /// Geometric number of failures before first success, success
  /// probability `p` in (0, 1].
  std::uint64_t geometric(double p) {
    return std::geometric_distribution<std::uint64_t>(p)(gen_);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Forks an independent stream; derived deterministically so that
  /// adding consumers does not perturb existing ones.
  Rng fork() { return Rng(gen_() ^ 0xD1B54A32D192ED03ull); }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace hni::sim
