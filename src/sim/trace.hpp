// Lightweight event tracing.
//
// Components emit typed, fixed-size trace events through a shared
// Tracer; sinks decide what to do with them (collect into a ring,
// format and print, count). Tracing is off by default and costs one
// branch per emit when disabled.
//
// The hot path is allocation-free by construction: a TraceEvent is a
// POD (enum id + numeric payload), the ring sink writes into
// preallocated storage, and human-readable text is produced lazily by
// Tracer::format() only when somebody asks. Components never build
// strings at the emit site.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace hni::sim {

/// What happened. Wire events carry the cell's seq and VC in the
/// payload words; state events use them as the id demands.
enum class TraceEventId : std::uint16_t {
  kLinkCellSent,         // a = vpi, b = vci, seq
  kLinkCellCorrupted,    // a = vpi, b = vci, seq
  kLinkCellLost,         // seq
  kLinkCellDroppedDown,  // seq
  kLinkUp,
  kLinkDown,
  kFifoPriorityDrop,     // a = fifo occupancy at the drop
  kSigRetransmit,        // a = message type, b = retry #, seq = call id
  kSigTimerExpiry,       // a = timer number (303/308/310/316), seq = call id
  kSigVcReclaimed,       // a = port, b = vci, seq = call id
  kSigRestart,           // a = port, b = attempt #
  kSigMalformed,         // a = cause code, seq = call id hint
  kSigCacRefusal,        // a = caller port, b = callee port, seq = call id
  kSwitchEfciMark,       // a = out port, b = vc label, seq
  kSwitchWredDrop,       // a = out port, b = 1 if CLP-tagged, seq
  kSwitchErStamp,        // a = in port, b = granted ER (cells/s), seq
  kOamCc,                // a = vc label, b = 1 declare / 0 clear (CC loss)
  kSwitchAisInsert,      // a = in port, b = out vc label, seq
  kSigReroute,           // a = 1 reroute / 0 revert, b = trunk id, seq = call
  kSigDefectReport,      // a = defect (0 LOC/1 AIS), b = vci, seq = call id
  kUser,                 // free for tests/tools; payload uninterpreted
};

/// One trace event: when, which component (interned id), what, and a
/// small numeric payload whose meaning depends on the event id.
struct TraceEvent {
  Time when = 0;
  TraceEventId id = TraceEventId::kUser;
  std::uint16_t source = 0;  // from Tracer::intern()
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t seq = 0;
};

/// Fixed-capacity ring of the most recent events. push() never
/// allocates after construction.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : buf_(capacity) {}

  void push(const TraceEvent& ev) {
    buf_[head_] = ev;
    head_ = (head_ + 1) % buf_.size();
    ++total_;
  }

  /// Events currently retained (<= capacity).
  std::size_t size() const {
    return total_ < buf_.size() ? static_cast<std::size_t>(total_)
                                : buf_.size();
  }
  std::size_t capacity() const { return buf_.size(); }
  /// Events ever pushed (overwritten ones included).
  std::uint64_t total() const { return total_; }

  /// Visits retained events oldest-first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = size();
    std::size_t idx = total_ < buf_.size() ? 0 : head_;
    for (std::size_t i = 0; i < n; ++i) {
      fn(buf_[idx]);
      idx = (idx + 1) % buf_.size();
    }
  }

 private:
  std::vector<TraceEvent> buf_;
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
};

/// Fan-out trace hub. Thread-unsafe by design (the kernel is
/// single-threaded).
class Tracer {
 public:
  using Sink = std::function<void(const TraceEvent&)>;

  /// Registers a component name; the returned id goes into
  /// TraceEvent::source. Cold path (at attach time, not per event).
  std::uint16_t intern(std::string name) {
    sources_.push_back(std::move(name));
    return static_cast<std::uint16_t>(sources_.size() - 1);
  }

  const std::string& source_name(std::uint16_t id) const {
    static const std::string unknown = "?";
    return id < sources_.size() ? sources_[id] : unknown;
  }

  /// Adds a callback sink; all future events are delivered to it.
  void add_sink(Sink sink) {
    sinks_.push_back(std::move(sink));
    armed_ = true;
  }

  /// Enables (or returns) the ring sink. Events are recorded into the
  /// ring with no per-event allocation.
  TraceRing& ring(std::size_t capacity = 4096) {
    if (!ring_) {
      ring_ = std::make_unique<TraceRing>(capacity);
      armed_ = true;
    }
    return *ring_;
  }
  bool has_ring() const { return ring_ != nullptr; }

  /// Convenience sink that appends events to `out`.
  void collect_into(std::vector<TraceEvent>& out) {
    add_sink([&out](const TraceEvent& ev) { out.push_back(ev); });
  }

  bool enabled() const { return armed_; }

  /// Hot path: one branch when disabled, zero allocations always.
  void emit(const TraceEvent& ev) {
    if (!armed_) return;
    if (ring_) ring_->push(ev);
    for (auto& sink : sinks_) sink(ev);
  }

  /// Renders an event as the old human-readable line, e.g.
  /// "link0: cell seq=12 vc=0/31 LOST". Lazy — allocation happens here,
  /// never at the emit site.
  std::string format(const TraceEvent& ev) const;

 private:
  bool armed_ = false;
  std::vector<Sink> sinks_;
  std::unique_ptr<TraceRing> ring_;
  std::vector<std::string> sources_;
};

}  // namespace hni::sim
