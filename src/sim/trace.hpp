// Lightweight event tracing.
//
// Components emit trace records through a shared Tracer; sinks decide
// what to do with them (print, collect, ignore). Tracing is off by
// default and costs one branch per emit when disabled.

#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace hni::sim {

/// One trace record: when, which component, what happened.
struct TraceRecord {
  Time when = 0;
  std::string source;
  std::string message;
};

/// Fan-out trace hub. Thread-unsafe by design (the kernel is
/// single-threaded).
class Tracer {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  /// Adds a sink; all future records are delivered to it.
  void add_sink(Sink sink) { sinks_.push_back(std::move(sink)); }

  /// Convenience sink that appends records to `out`.
  void collect_into(std::vector<TraceRecord>& out) {
    add_sink([&out](const TraceRecord& r) { out.push_back(r); });
  }

  bool enabled() const { return !sinks_.empty(); }

  void emit(Time when, std::string source, std::string message) {
    if (!enabled()) return;
    TraceRecord rec{when, std::move(source), std::move(message)};
    for (auto& sink : sinks_) sink(rec);
  }

 private:
  std::vector<Sink> sinks_;
};

}  // namespace hni::sim
