#include "sim/fault.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hni::sim {

void FaultInjector::register_point(std::string name, Handler handler,
                                   double default_magnitude) {
  if (find(name) != nullptr) {
    throw std::invalid_argument("FaultInjector: duplicate point " + name);
  }
  points_.push_back(
      Point{std::move(name), std::move(handler), default_magnitude});
}

bool FaultInjector::has_point(const std::string& name) const {
  return find(name) != nullptr;
}

const FaultInjector::Point* FaultInjector::find(
    const std::string& name) const {
  for (const auto& p : points_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

void FaultInjector::fire(const Point& point, FaultPhase phase, Time duration,
                         double magnitude, std::uint64_t id) {
  FaultEvent ev;
  ev.point = point.name;
  ev.phase = phase;
  ev.at = sim_.now();
  ev.duration = duration;
  ev.magnitude = magnitude;
  ev.id = id;
  log_.push_back(ev);
  if (phase == FaultPhase::kBegin) {
    begun_.add();
  } else {
    ended_.add();
  }
  point.handler(ev);
}

void FaultInjector::schedule(const Spec& spec) {
  const Point* point = find(spec.point);
  if (point == nullptr) {
    throw std::invalid_argument("FaultInjector: unknown point " + spec.point);
  }
  const std::uint64_t repeat = std::max<std::uint64_t>(1, spec.repeat);
  for (std::uint64_t i = 0; i < repeat; ++i) {
    const Time at =
        spec.at + static_cast<Time>(i) * std::max<Time>(0, spec.period);
    const std::uint64_t id = next_id_++;
    sim_.at(std::max(at, sim_.now()), [this, point, spec, id] {
      fire(*point, FaultPhase::kBegin, spec.duration, spec.magnitude, id);
      if (spec.duration > 0) {
        sim_.after(spec.duration, [this, point, spec, id] {
          fire(*point, FaultPhase::kEnd, spec.duration, spec.magnitude, id);
        });
      }
    });
  }
}

void FaultInjector::chaos(Time start, Time horizon, std::size_t count,
                          Time mean_duration) {
  if (points_.empty() || count == 0) return;
  if (horizon <= start) {
    throw std::invalid_argument("FaultInjector: empty chaos window");
  }
  for (std::size_t i = 0; i < count; ++i) {
    const Point& point =
        points_[rng_.uniform_int(0, points_.size() - 1)];
    Spec spec;
    spec.point = point.name;
    spec.at = start + static_cast<Time>(rng_.uniform_int(
                          0, static_cast<std::uint64_t>(horizon - start - 1)));
    spec.duration = std::max<Time>(
        1, static_cast<Time>(
               rng_.exponential(static_cast<double>(mean_duration))));
    spec.magnitude = point.default_magnitude;
    schedule(spec);
  }
}

std::string FaultInjector::log_string() const {
  std::string out;
  for (const auto& ev : log_) {
    out += std::to_string(ev.at) + " " + ev.point +
           (ev.phase == FaultPhase::kBegin ? " begin" : " end") + " d=" +
           std::to_string(ev.duration) + " m=" + std::to_string(ev.magnitude) +
           " id=" + std::to_string(ev.id) + "\n";
  }
  return out;
}

}  // namespace hni::sim
