// Measurement primitives shared by all modules.
//
// Counter           — monotonically increasing event/byte counts.
// RunningStat       — streaming mean/variance/min/max (Welford).
// Histogram         — fixed-bin-width histogram with percentile queries.
// TimeWeightedStat  — time-average of a piecewise-constant signal
//                     (queue depth, utilization), integrated in sim time.

#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace hni::sim {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Streaming mean/variance/min/max over double-valued samples.
class RunningStat {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  void reset() { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bin histogram over [0, bin_width * bins); values beyond
/// the top edge land in an overflow bin that percentile() treats as the
/// top edge.
class Histogram {
 public:
  Histogram(double bin_width, std::size_t bins);

  void add(double x);
  std::uint64_t count() const { return total_; }
  /// p in [0, 100]. Linear interpolation within the bin.
  double percentile(double p) const;
  double bin_width() const { return bin_width_; }
  const std::vector<std::uint64_t>& bins() const { return counts_; }
  std::uint64_t overflow() const { return overflow_; }
  void reset();

 private:
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Time-average of a piecewise-constant signal. Call set(now, v) at each
/// change. Reading the mean never mutates state: mean(now) extends the
/// integral to `now` arithmetically, so interleaved readers at different
/// times (or a reader with a stale clock) cannot corrupt the books.
/// A non-monotonic `now` (before the last recorded change) is clamped
/// to the last change time.
class TimeWeightedStat {
 public:
  void set(Time now, double value);
  /// Explicit integrate step: advances the integral to `now` without
  /// changing the value (e.g. before a checkpoint dump).
  void advance(Time now) { set(now, value_); }
  /// Time average since the first set(), extended to `now` (read-only).
  /// Returns 0 if never set or no time elapsed.
  double mean(Time now) const;
  double current() const { return value_; }
  double max() const { return max_; }

 private:
  Time last_ = -1;
  double integral_ = 0.0;
  Time start_ = -1;
  double value_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hni::sim
