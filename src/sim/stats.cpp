#include "sim/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace hni::sim {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double bin_width, std::size_t bins)
    : bin_width_(bin_width), counts_(bins, 0) {
  if (bin_width <= 0.0 || bins == 0) {
    throw std::invalid_argument("Histogram: bin_width and bins must be > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < 0.0) x = 0.0;
  const auto idx = static_cast<std::size_t>(x / bin_width_);
  if (idx >= counts_.size()) {
    ++overflow_;
  } else {
    ++counts_[idx];
  }
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t next = cum + counts_[i];
    if (static_cast<double>(next) >= target) {
      const double within =
          counts_[i] == 0
              ? 0.0
              : (target - static_cast<double>(cum)) /
                    static_cast<double>(counts_[i]);
      return (static_cast<double>(i) + within) * bin_width_;
    }
    cum = next;
  }
  return bin_width_ * static_cast<double>(counts_.size());
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  overflow_ = 0;
}

void TimeWeightedStat::set(Time now, double value) {
  if (start_ < 0) {
    start_ = now;
  } else if (last_ >= 0 && now > last_) {
    integral_ += value_ * static_cast<double>(now - last_);
  }
  // A non-monotonic `now` (stale clock) must not move the books
  // backwards; the change takes effect at the integration frontier.
  last_ = std::max(last_, now);
  value_ = value;
  max_ = std::max(max_, value);
}

double TimeWeightedStat::mean(Time now) const {
  if (start_ < 0) return 0.0;
  // Extend the integral to `now` arithmetically — no member mutation, so
  // repeated or out-of-order reads cannot corrupt the integral. Reads
  // before the last change clamp to the integration frontier.
  const Time end = std::max(now, last_);
  if (end <= start_) return 0.0;
  double integral = integral_;
  if (now > last_) {
    integral += value_ * static_cast<double>(now - last_);
  }
  return integral / static_cast<double>(end - start_);
}

}  // namespace hni::sim
