// Simulated-time representation for the hni discrete-event kernel.
//
// Time is a signed 64-bit count of picoseconds. At picosecond resolution
// the representable range exceeds 100 days of simulated time, while every
// rate that matters to this library (bus cycles at 25 MHz, SONET cell
// slots of ~708 ns / ~2.83 us, engine cycles at tens of MHz) is exact to
// well below one part in 10^4.

#pragma once

#include <cstdint>
#include <string>

namespace hni::sim {

/// A point in (or duration of) simulated time, in picoseconds.
using Time = std::int64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1'000;
inline constexpr Time kMicrosecond = 1'000'000;
inline constexpr Time kMillisecond = 1'000'000'000;
inline constexpr Time kSecond = 1'000'000'000'000;

/// Largest representable time; used as "never".
inline constexpr Time kTimeNever = INT64_MAX;

constexpr Time picoseconds(std::int64_t n) { return n * kPicosecond; }
constexpr Time nanoseconds(std::int64_t n) { return n * kNanosecond; }
constexpr Time microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Time milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Time seconds(std::int64_t n) { return n * kSecond; }

/// Converts a duration to double-precision seconds (for reporting).
constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts a duration to double-precision microseconds (for reporting).
constexpr double to_microseconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/// Converts a duration to double-precision nanoseconds (for reporting).
constexpr double to_nanoseconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kNanosecond);
}

/// Duration of one cycle of a clock running at `hz`, rounded to the
/// nearest picosecond. A 25 MHz bus cycle is exactly 40'000 ps.
constexpr Time cycle_time(double hz) {
  return static_cast<Time>(static_cast<double>(kSecond) / hz + 0.5);
}

/// Time to serialize `bits` at `bits_per_second`, rounded to the nearest
/// picosecond.
constexpr Time serialization_time(std::int64_t bits, double bits_per_second) {
  return static_cast<Time>(static_cast<double>(bits) *
                               static_cast<double>(kSecond) / bits_per_second +
                           0.5);
}

/// Renders a time as a human-readable string with an adaptive unit
/// (e.g. "2.831 us", "681.6 ns").
std::string format_time(Time t);

}  // namespace hni::sim
