// Declarative fault injection for chaos experiments.
//
// Components (or the scenario wiring them) register named *fault
// points* — "rx.dma.fail", "link0.flap", "board.squeeze" — each backed
// by a handler that perturbs the component when the fault begins and
// (for faults with a duration) restores it when the fault ends. The
// injector then executes a schedule against those points: explicit
// specs for targeted tests, or a seeded random "chaos" draw for soak
// runs. All randomness comes from the injector's own sim::Rng, so the
// same seed produces bit-identical fault schedules — a chaos run is as
// reproducible as any other experiment.
//
// Every fired begin/end is appended to a log; tests serialize the log
// to assert determinism and to correlate faults with recovery actions.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hni::sim {

enum class FaultPhase : std::uint8_t { kBegin, kEnd };

/// One fired fault transition, as delivered to a point's handler and
/// recorded in the log.
struct FaultEvent {
  std::string point;
  FaultPhase phase = FaultPhase::kBegin;
  Time at = 0;          // when the transition fired
  Time duration = 0;    // 0 = one-shot (no kEnd follows)
  double magnitude = 1.0;  // point-specific intensity
  std::uint64_t id = 0;    // pairs a kBegin with its kEnd
};

class FaultInjector {
 public:
  using Handler = std::function<void(const FaultEvent&)>;

  /// A declarative fault against a registered point.
  struct Spec {
    std::string point;
    Time at = 0;           // first activation (absolute sim time)
    Time duration = 0;     // 0 = one-shot: kBegin only
    double magnitude = 1.0;
    std::uint64_t repeat = 1;  // occurrences
    Time period = 0;           // spacing between occurrences
  };

  explicit FaultInjector(Simulator& sim, std::uint64_t seed = 1)
      : sim_(sim), rng_(seed) {}

  /// Registers a fault point. `default_magnitude` is what chaos-mode
  /// draws use (explicit Specs carry their own).
  void register_point(std::string name, Handler handler,
                      double default_magnitude = 1.0);
  bool has_point(const std::string& name) const;
  std::size_t points() const { return points_.size(); }

  /// Schedules `spec` (throws std::invalid_argument on unknown point).
  void schedule(const Spec& spec);

  /// Chaos mode: draws `count` faults across all registered points,
  /// activation uniform in [start, horizon), duration exponential with
  /// mean `mean_duration` (clamped to >= 1 ps), magnitude the point's
  /// default. Draws happen now, in registration order of nothing —
  /// purely from the injector's rng — so the schedule is a function of
  /// (registered points, arguments, seed) alone.
  void chaos(Time start, Time horizon, std::size_t count,
             Time mean_duration);

  Rng& rng() { return rng_; }

  std::uint64_t faults_begun() const { return begun_.value(); }
  std::uint64_t faults_ended() const { return ended_.value(); }

  /// Every fired transition, in firing order.
  const std::vector<FaultEvent>& log() const { return log_; }
  /// One line per log entry — convenient for determinism comparisons.
  std::string log_string() const;

 private:
  struct Point {
    std::string name;
    Handler handler;
    double default_magnitude = 1.0;
  };

  const Point* find(const std::string& name) const;
  void fire(const Point& point, FaultPhase phase, Time duration,
            double magnitude, std::uint64_t id);

  Simulator& sim_;
  Rng rng_;
  std::vector<Point> points_;  // insertion order: chaos draws index into it
  std::vector<FaultEvent> log_;
  Counter begun_;
  Counter ended_;
  std::uint64_t next_id_ = 1;
};

}  // namespace hni::sim
