// Discrete-event simulation kernel.
//
// A Simulator owns a time-ordered queue of events; each event is a
// callable fired at a scheduled instant. Ties are broken by insertion
// order (FIFO among simultaneous events), which makes component
// interactions deterministic and keeps every experiment reproducible.
//
// Components hold a reference to the Simulator and call `at()`/`after()`
// to schedule work. The kernel is deliberately minimal: no processes, no
// channels — those live in the domain libraries built on top.
//
// Implementation: a cache-friendly implicit 4-ary min-heap of 32-byte
// nodes (when, seq, slot*, gen) ordered by (when, seq), over a chunked
// freelist arena of generation-tagged slots holding the callables
// (sim::Action, small-buffer-optimized). Chunking keeps slot addresses
// stable, so nodes and handles point at slots directly — no index
// arithmetic on the hot path. The steady-state cell path — schedule,
// fire, reschedule — touches no allocator once the arena and heap are
// warm, and
// cancellation is O(1): bump the slot's generation and let the stale
// heap node fall out lazily at pop time. The (time, insertion-seq)
// ordering contract is identical to the original std::priority_queue
// kernel, so same-seed runs stay byte-identical.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/action.hpp"
#include "sim/time.hpp"

namespace hni::sim {

namespace detail {

// Arena slot. `gen` increments whenever the slot empties (fire or
// cancel), invalidating outstanding handles and stale heap nodes.
// A handle could alias only after 2^32 reuses of one slot — beyond
// any simulation's event count between cancel and fire.
struct EventSlot {
  Action action;
  std::uint32_t gen = 0;
  EventSlot* next_free = nullptr;
};

}  // namespace detail

/// Handle to a scheduled event; allows cancellation.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle refers to an event (which may have fired).
  bool valid() const { return slot_ != nullptr; }

 private:
  friend class Simulator;
  EventHandle(detail::EventSlot* slot, std::uint32_t gen)
      : slot_(slot), gen_(gen) {}
  // Slots live for the Simulator's lifetime, so the pointer stays
  // dereferenceable; the generation decides whether it still refers
  // to a pending event.
  detail::EventSlot* slot_ = nullptr;
  std::uint32_t gen_ = 0;
};

/// The event-driven simulation engine.
class Simulator {
 public:
  using Action = sim::Action;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules a callable at absolute time `when` (must be >= now()).
  /// The fast path: the callable is constructed directly into its
  /// arena slot, no intermediate Action.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Action>)
  EventHandle at(Time when, F&& f) {
    detail::EventSlot* s = prepare(when);
    s->action.emplace(std::forward<F>(f));
    return commit(when, s);
  }

  /// Schedules an already-wrapped Action.
  EventHandle at(Time when, Action action) {
    detail::EventSlot* s = prepare(when);
    s->action = std::move(action);
    return commit(when, s);
  }

  /// Schedules `delay` after the current time.
  template <typename F>
  EventHandle after(Time delay, F&& f) {
    return at(now_ + delay, std::forward<F>(f));
  }

  /// Cancels a pending event in O(1). Cancelling an already-fired or
  /// invalid handle is a harmless no-op. Returns true iff a pending
  /// event was cancelled.
  bool cancel(EventHandle handle) {
    // Generation mismatch means the event already fired or was
    // cancelled (the slot may have been reused since); both no-ops.
    if (handle.slot_ == nullptr || handle.slot_->gen != handle.gen_) {
      return false;
    }
    release_slot(handle.slot_);
    ++stale_;  // its heap node falls out lazily at pop time
    return true;
  }

  /// Runs until the queue is empty. Returns the number of events fired.
  std::uint64_t run();

  /// Runs until the queue is empty or simulated time would exceed
  /// `deadline`; events at exactly `deadline` fire. On return, now() is
  /// min(deadline, time of last event). Returns events fired.
  std::uint64_t run_until(Time deadline);

  /// Fires the single next event, if any. Returns false on empty queue.
  bool step();

  /// Number of events currently pending.
  std::size_t pending() const { return heap_.size() - stale_; }

  /// Total events fired since construction.
  std::uint64_t events_fired() const { return fired_; }

 private:
  // Heap node: everything ordering needs plus the slot — the callable
  // stays put in its slot so sift operations move 32 bytes, not the
  // capture buffer.
  struct Node {
    Time when;
    std::uint64_t seq;        // tie-break: FIFO among equal times
    detail::EventSlot* slot;  // stable address into the chunked arena
    std::uint32_t gen;        // matches the slot's gen while pending
  };

  static bool before(const Node& a, const Node& b) {
    return a.when < b.when || (a.when == b.when && a.seq < b.seq);
  }

  // at() fast path, split so the callable-emplace sits between them:
  // prepare() validates and picks a slot, commit() pushes the heap
  // node and mints the handle.
  detail::EventSlot* prepare(Time when) {
    if (when < now_) {
      throw_past();  // out-of-line: keeps the hot path branch cheap
    }
    return acquire_slot();
  }
  EventHandle commit(Time when, detail::EventSlot* s) {
    const std::uint32_t gen = s->gen;
    heap_push(Node{when, next_seq_++, s, gen});
    return EventHandle{s, gen};
  }

  detail::EventSlot* acquire_slot() {
    if (free_head_ != nullptr) {
      detail::EventSlot* s = free_head_;
      free_head_ = s->next_free;
      return s;
    }
    return grow_slots();
  }
  void release_slot(detail::EventSlot* s) {
    s->action.reset();
    s->gen++;  // outstanding handles and heap nodes go stale here
    s->next_free = free_head_;
    free_head_ = s;
  }

  void heap_push(const Node& n) {
    std::size_t i = heap_.size();
    heap_.push_back(n);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  [[noreturn]] static void throw_past();
  detail::EventSlot* grow_slots();
  void heap_pop_root();
  bool skim_stale();  // drop cancelled root nodes; false when empty
  void fire_root();

  static constexpr std::uint32_t kChunkSize = 512;  // slots per chunk

  std::vector<Node> heap_;
  // Fixed-size chunks give slots stable addresses: growing the arena
  // mid-callback cannot move live slots, so callables run in place.
  std::vector<std::unique_ptr<detail::EventSlot[]>> chunks_;
  std::uint32_t chunk_fill_ = kChunkSize;  // slots used in chunks_.back()
  detail::EventSlot* free_head_ = nullptr;
  std::size_t stale_ = 0;  // cancelled nodes still in the heap
  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
};

}  // namespace hni::sim
