// Discrete-event simulation kernel.
//
// A Simulator owns a time-ordered queue of events; each event is a
// callable fired at a scheduled instant. Ties are broken by insertion
// order (FIFO among simultaneous events), which makes component
// interactions deterministic and keeps every experiment reproducible.
//
// Components hold a reference to the Simulator and call `at()`/`after()`
// to schedule work. The kernel is deliberately minimal: no processes, no
// channels — those live in the domain libraries built on top.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace hni::sim {

/// Handle to a scheduled event; allows cancellation.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle refers to an event (which may have fired).
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// The event-driven simulation engine.
class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `action` at absolute time `when` (must be >= now()).
  EventHandle at(Time when, Action action);

  /// Schedules `action` `delay` after the current time.
  EventHandle after(Time delay, Action action) {
    return at(now_ + delay, std::move(action));
  }

  /// Cancels a pending event. Cancelling an already-fired or invalid
  /// handle is a harmless no-op. Returns true if an event was cancelled.
  bool cancel(EventHandle handle);

  /// Runs until the queue is empty. Returns the number of events fired.
  std::uint64_t run();

  /// Runs until the queue is empty or simulated time would exceed
  /// `deadline`; events at exactly `deadline` fire. On return, now() is
  /// min(deadline, time of last event). Returns events fired.
  std::uint64_t run_until(Time deadline);

  /// Fires the single next event, if any. Returns false on empty queue.
  bool step();

  /// Number of events currently pending.
  std::size_t pending() const { return queue_.size() - cancelled_; }

  /// Total events fired since construction.
  std::uint64_t events_fired() const { return fired_; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    std::uint64_t id;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_next(Entry& out);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_ids_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t cancelled_ = 0;
};

}  // namespace hni::sim
