#include "sim/trace.hpp"

namespace hni::sim {

std::string Tracer::format(const TraceEvent& ev) const {
  std::string out = source_name(ev.source) + ": ";
  const std::string vc =
      "vc=" + std::to_string(ev.a) + "/" + std::to_string(ev.b);
  const std::string seq = "cell seq=" + std::to_string(ev.seq);
  switch (ev.id) {
    case TraceEventId::kLinkCellSent:
      out += seq + " " + vc;
      break;
    case TraceEventId::kLinkCellCorrupted:
      out += seq + " " + vc + " CORRUPTED";
      break;
    case TraceEventId::kLinkCellLost:
      out += seq + " LOST";
      break;
    case TraceEventId::kLinkCellDroppedDown:
      out += seq + " DROPPED (link down)";
      break;
    case TraceEventId::kLinkUp:
      out += "LINK UP";
      break;
    case TraceEventId::kLinkDown:
      out += "LINK DOWN";
      break;
    case TraceEventId::kFifoPriorityDrop:
      out += "control cell DROPPED (fifo full, depth=" +
             std::to_string(ev.a) + ")";
      break;
    case TraceEventId::kSigRetransmit:
      out += "sig RETRANSMIT type=" + std::to_string(ev.a) + " retry=" +
             std::to_string(ev.b) + " call=" + std::to_string(ev.seq);
      break;
    case TraceEventId::kSigTimerExpiry:
      out += "sig T" + std::to_string(ev.a) +
             " EXPIRED call=" + std::to_string(ev.seq);
      break;
    case TraceEventId::kSigVcReclaimed:
      out += "sig VC RECLAIMED port=" + std::to_string(ev.a) +
             " vci=" + std::to_string(ev.b) +
             " call=" + std::to_string(ev.seq);
      break;
    case TraceEventId::kSigRestart:
      out += "sig RESTART port=" + std::to_string(ev.a) + " attempt=" +
             std::to_string(ev.b);
      break;
    case TraceEventId::kSigMalformed:
      out += "sig MALFORMED cause=" + std::to_string(ev.a) +
             " call=" + std::to_string(ev.seq);
      break;
    case TraceEventId::kSigCacRefusal:
      out += "sig CAC REFUSED ports=" + std::to_string(ev.a) + "->" +
             std::to_string(ev.b) + " call=" + std::to_string(ev.seq);
      break;
    case TraceEventId::kSwitchEfciMark:
      out += seq + " EFCI MARKED port=" + std::to_string(ev.a) +
             " vc_label=" + std::to_string(ev.b);
      break;
    case TraceEventId::kSwitchWredDrop:
      out += seq + " WRED DROPPED port=" + std::to_string(ev.a) +
             (ev.b != 0 ? " (tagged)" : "");
      break;
    case TraceEventId::kSwitchErStamp:
      out += seq + " ER STAMPED port=" + std::to_string(ev.a) +
             " er=" + std::to_string(ev.b);
      break;
    case TraceEventId::kOamCc:
      out += std::string("CC LOSS ") + (ev.b != 0 ? "DECLARED" : "CLEARED") +
             " vc_label=" + std::to_string(ev.a);
      break;
    case TraceEventId::kSwitchAisInsert:
      out += "AIS INSERTED in_port=" + std::to_string(ev.a) +
             " out_vc_label=" + std::to_string(ev.b);
      break;
    case TraceEventId::kSigReroute:
      out += std::string("sig ") + (ev.a != 0 ? "REROUTE" : "REVERT") +
             " trunk=" + std::to_string(ev.b) +
             " call=" + std::to_string(ev.seq);
      break;
    case TraceEventId::kSigDefectReport:
      out += std::string("sig DEFECT ") + (ev.a != 0 ? "AIS" : "LOC") +
             " vci=" + std::to_string(ev.b) +
             " call=" + std::to_string(ev.seq);
      break;
    case TraceEventId::kUser:
      out += "user event a=" + std::to_string(ev.a) +
             " b=" + std::to_string(ev.b);
      break;
  }
  return out;
}

}  // namespace hni::sim
