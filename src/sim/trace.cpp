#include "sim/trace.hpp"

namespace hni::sim {

std::string Tracer::format(const TraceEvent& ev) const {
  std::string out = source_name(ev.source) + ": ";
  const std::string vc =
      "vc=" + std::to_string(ev.a) + "/" + std::to_string(ev.b);
  const std::string seq = "cell seq=" + std::to_string(ev.seq);
  switch (ev.id) {
    case TraceEventId::kLinkCellSent:
      out += seq + " " + vc;
      break;
    case TraceEventId::kLinkCellCorrupted:
      out += seq + " " + vc + " CORRUPTED";
      break;
    case TraceEventId::kLinkCellLost:
      out += seq + " LOST";
      break;
    case TraceEventId::kLinkCellDroppedDown:
      out += seq + " DROPPED (link down)";
      break;
    case TraceEventId::kLinkUp:
      out += "LINK UP";
      break;
    case TraceEventId::kLinkDown:
      out += "LINK DOWN";
      break;
    case TraceEventId::kFifoPriorityDrop:
      out += "control cell DROPPED (fifo full, depth=" +
             std::to_string(ev.a) + ")";
      break;
    case TraceEventId::kUser:
      out += "user event a=" + std::to_string(ev.a) +
             " b=" + std::to_string(ev.b);
      break;
  }
  return out;
}

}  // namespace hni::sim
