file(REMOVE_RECURSE
  "../bench/bench_a6_interrupt_coalescing"
  "../bench/bench_a6_interrupt_coalescing.pdb"
  "CMakeFiles/bench_a6_interrupt_coalescing.dir/bench_a6_interrupt_coalescing.cpp.o"
  "CMakeFiles/bench_a6_interrupt_coalescing.dir/bench_a6_interrupt_coalescing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_interrupt_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
