# Empty compiler generated dependencies file for bench_a6_interrupt_coalescing.
# This may be replaced when dependencies are built.
