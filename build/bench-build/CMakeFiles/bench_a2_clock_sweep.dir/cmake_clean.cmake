file(REMOVE_RECURSE
  "../bench/bench_a2_clock_sweep"
  "../bench/bench_a2_clock_sweep.pdb"
  "CMakeFiles/bench_a2_clock_sweep.dir/bench_a2_clock_sweep.cpp.o"
  "CMakeFiles/bench_a2_clock_sweep.dir/bench_a2_clock_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_clock_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
