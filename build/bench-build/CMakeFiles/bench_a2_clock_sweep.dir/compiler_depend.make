# Empty compiler generated dependencies file for bench_a2_clock_sweep.
# This may be replaced when dependencies are built.
