file(REMOVE_RECURSE
  "../bench/bench_a1_fifo_depth"
  "../bench/bench_a1_fifo_depth.pdb"
  "CMakeFiles/bench_a1_fifo_depth.dir/bench_a1_fifo_depth.cpp.o"
  "CMakeFiles/bench_a1_fifo_depth.dir/bench_a1_fifo_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_fifo_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
