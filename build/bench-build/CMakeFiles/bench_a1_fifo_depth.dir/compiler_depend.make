# Empty compiler generated dependencies file for bench_a1_fifo_depth.
# This may be replaced when dependencies are built.
