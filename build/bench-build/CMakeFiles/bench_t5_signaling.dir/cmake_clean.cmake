file(REMOVE_RECURSE
  "../bench/bench_t5_signaling"
  "../bench/bench_t5_signaling.pdb"
  "CMakeFiles/bench_t5_signaling.dir/bench_t5_signaling.cpp.o"
  "CMakeFiles/bench_t5_signaling.dir/bench_t5_signaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_signaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
