# Empty dependencies file for bench_t5_signaling.
# This may be replaced when dependencies are built.
