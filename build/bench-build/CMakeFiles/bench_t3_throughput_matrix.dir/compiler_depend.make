# Empty compiler generated dependencies file for bench_t3_throughput_matrix.
# This may be replaced when dependencies are built.
