file(REMOVE_RECURSE
  "../bench/bench_t3_throughput_matrix"
  "../bench/bench_t3_throughput_matrix.pdb"
  "CMakeFiles/bench_t3_throughput_matrix.dir/bench_t3_throughput_matrix.cpp.o"
  "CMakeFiles/bench_t3_throughput_matrix.dir/bench_t3_throughput_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_throughput_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
