# Empty dependencies file for bench_t1_tx_budget.
# This may be replaced when dependencies are built.
