file(REMOVE_RECURSE
  "../bench/bench_t1_tx_budget"
  "../bench/bench_t1_tx_budget.pdb"
  "CMakeFiles/bench_t1_tx_budget.dir/bench_t1_tx_budget.cpp.o"
  "CMakeFiles/bench_t1_tx_budget.dir/bench_t1_tx_budget.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_tx_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
