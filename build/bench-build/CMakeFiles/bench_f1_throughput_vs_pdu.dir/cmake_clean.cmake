file(REMOVE_RECURSE
  "../bench/bench_f1_throughput_vs_pdu"
  "../bench/bench_f1_throughput_vs_pdu.pdb"
  "CMakeFiles/bench_f1_throughput_vs_pdu.dir/bench_f1_throughput_vs_pdu.cpp.o"
  "CMakeFiles/bench_f1_throughput_vs_pdu.dir/bench_f1_throughput_vs_pdu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_throughput_vs_pdu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
