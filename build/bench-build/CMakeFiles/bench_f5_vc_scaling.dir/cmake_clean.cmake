file(REMOVE_RECURSE
  "../bench/bench_f5_vc_scaling"
  "../bench/bench_f5_vc_scaling.pdb"
  "CMakeFiles/bench_f5_vc_scaling.dir/bench_f5_vc_scaling.cpp.o"
  "CMakeFiles/bench_f5_vc_scaling.dir/bench_f5_vc_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_vc_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
