# Empty dependencies file for bench_f5_vc_scaling.
# This may be replaced when dependencies are built.
