# Empty dependencies file for bench_f3_fifo_occupancy.
# This may be replaced when dependencies are built.
