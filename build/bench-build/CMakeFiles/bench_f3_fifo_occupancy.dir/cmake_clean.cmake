file(REMOVE_RECURSE
  "../bench/bench_f3_fifo_occupancy"
  "../bench/bench_f3_fifo_occupancy.pdb"
  "CMakeFiles/bench_f3_fifo_occupancy.dir/bench_f3_fifo_occupancy.cpp.o"
  "CMakeFiles/bench_f3_fifo_occupancy.dir/bench_f3_fifo_occupancy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_fifo_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
