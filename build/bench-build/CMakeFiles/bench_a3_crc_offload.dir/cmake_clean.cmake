file(REMOVE_RECURSE
  "../bench/bench_a3_crc_offload"
  "../bench/bench_a3_crc_offload.pdb"
  "CMakeFiles/bench_a3_crc_offload.dir/bench_a3_crc_offload.cpp.o"
  "CMakeFiles/bench_a3_crc_offload.dir/bench_a3_crc_offload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_crc_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
