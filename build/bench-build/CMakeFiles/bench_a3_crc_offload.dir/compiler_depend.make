# Empty compiler generated dependencies file for bench_a3_crc_offload.
# This may be replaced when dependencies are built.
