file(REMOVE_RECURSE
  "../bench/bench_t2_rx_budget"
  "../bench/bench_t2_rx_budget.pdb"
  "CMakeFiles/bench_t2_rx_budget.dir/bench_t2_rx_budget.cpp.o"
  "CMakeFiles/bench_t2_rx_budget.dir/bench_t2_rx_budget.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_rx_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
