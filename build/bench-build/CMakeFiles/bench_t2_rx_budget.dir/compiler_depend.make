# Empty compiler generated dependencies file for bench_t2_rx_budget.
# This may be replaced when dependencies are built.
