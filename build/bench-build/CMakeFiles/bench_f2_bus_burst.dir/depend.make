# Empty dependencies file for bench_f2_bus_burst.
# This may be replaced when dependencies are built.
