file(REMOVE_RECURSE
  "../bench/bench_f2_bus_burst"
  "../bench/bench_f2_bus_burst.pdb"
  "CMakeFiles/bench_f2_bus_burst.dir/bench_f2_bus_burst.cpp.o"
  "CMakeFiles/bench_f2_bus_burst.dir/bench_f2_bus_burst.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_bus_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
