# Empty compiler generated dependencies file for bench_t4_baseline_compare.
# This may be replaced when dependencies are built.
