file(REMOVE_RECURSE
  "../bench/bench_t4_baseline_compare"
  "../bench/bench_t4_baseline_compare.pdb"
  "CMakeFiles/bench_t4_baseline_compare.dir/bench_t4_baseline_compare.cpp.o"
  "CMakeFiles/bench_t4_baseline_compare.dir/bench_t4_baseline_compare.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_baseline_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
