file(REMOVE_RECURSE
  "../bench/bench_a5_epd"
  "../bench/bench_a5_epd.pdb"
  "CMakeFiles/bench_a5_epd.dir/bench_a5_epd.cpp.o"
  "CMakeFiles/bench_a5_epd.dir/bench_a5_epd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_epd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
