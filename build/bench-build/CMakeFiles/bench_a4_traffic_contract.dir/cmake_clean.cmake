file(REMOVE_RECURSE
  "../bench/bench_a4_traffic_contract"
  "../bench/bench_a4_traffic_contract.pdb"
  "CMakeFiles/bench_a4_traffic_contract.dir/bench_a4_traffic_contract.cpp.o"
  "CMakeFiles/bench_a4_traffic_contract.dir/bench_a4_traffic_contract.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_traffic_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
