# Empty dependencies file for bench_a4_traffic_contract.
# This may be replaced when dependencies are built.
