# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rx_timeout_trace_test.
