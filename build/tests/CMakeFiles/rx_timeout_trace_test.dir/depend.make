# Empty dependencies file for rx_timeout_trace_test.
# This may be replaced when dependencies are built.
