file(REMOVE_RECURSE
  "CMakeFiles/rx_timeout_trace_test.dir/rx_timeout_trace_test.cpp.o"
  "CMakeFiles/rx_timeout_trace_test.dir/rx_timeout_trace_test.cpp.o.d"
  "rx_timeout_trace_test"
  "rx_timeout_trace_test.pdb"
  "rx_timeout_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rx_timeout_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
