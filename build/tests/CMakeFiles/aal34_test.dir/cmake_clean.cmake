file(REMOVE_RECURSE
  "CMakeFiles/aal34_test.dir/aal34_test.cpp.o"
  "CMakeFiles/aal34_test.dir/aal34_test.cpp.o.d"
  "aal34_test"
  "aal34_test.pdb"
  "aal34_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aal34_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
