# Empty dependencies file for aal_sar_test.
# This may be replaced when dependencies are built.
