file(REMOVE_RECURSE
  "CMakeFiles/aal_sar_test.dir/aal_sar_test.cpp.o"
  "CMakeFiles/aal_sar_test.dir/aal_sar_test.cpp.o.d"
  "aal_sar_test"
  "aal_sar_test.pdb"
  "aal_sar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aal_sar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
