# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for aal_sar_test.
