file(REMOVE_RECURSE
  "CMakeFiles/oam_test.dir/oam_test.cpp.o"
  "CMakeFiles/oam_test.dir/oam_test.cpp.o.d"
  "oam_test"
  "oam_test.pdb"
  "oam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
