# Empty dependencies file for oam_test.
# This may be replaced when dependencies are built.
