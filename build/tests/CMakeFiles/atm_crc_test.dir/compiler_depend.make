# Empty compiler generated dependencies file for atm_crc_test.
# This may be replaced when dependencies are built.
