file(REMOVE_RECURSE
  "CMakeFiles/atm_crc_test.dir/atm_crc_test.cpp.o"
  "CMakeFiles/atm_crc_test.dir/atm_crc_test.cpp.o.d"
  "atm_crc_test"
  "atm_crc_test.pdb"
  "atm_crc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_crc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
