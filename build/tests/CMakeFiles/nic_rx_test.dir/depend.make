# Empty dependencies file for nic_rx_test.
# This may be replaced when dependencies are built.
