file(REMOVE_RECURSE
  "CMakeFiles/nic_rx_test.dir/nic_rx_test.cpp.o"
  "CMakeFiles/nic_rx_test.dir/nic_rx_test.cpp.o.d"
  "nic_rx_test"
  "nic_rx_test.pdb"
  "nic_rx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_rx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
