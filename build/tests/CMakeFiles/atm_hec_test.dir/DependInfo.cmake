
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/atm_hec_test.cpp" "tests/CMakeFiles/atm_hec_test.dir/atm_hec_test.cpp.o" "gcc" "tests/CMakeFiles/atm_hec_test.dir/atm_hec_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hni_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/hni_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/hni_host.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/hni_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/hni_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/hni_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hni_net.dir/DependInfo.cmake"
  "/root/repo/build/src/aal/CMakeFiles/hni_aal.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/hni_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hni_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
