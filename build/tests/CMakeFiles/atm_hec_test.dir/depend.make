# Empty dependencies file for atm_hec_test.
# This may be replaced when dependencies are built.
