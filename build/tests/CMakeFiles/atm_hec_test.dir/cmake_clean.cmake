file(REMOVE_RECURSE
  "CMakeFiles/atm_hec_test.dir/atm_hec_test.cpp.o"
  "CMakeFiles/atm_hec_test.dir/atm_hec_test.cpp.o.d"
  "atm_hec_test"
  "atm_hec_test.pdb"
  "atm_hec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_hec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
