file(REMOVE_RECURSE
  "CMakeFiles/nic_parts_test.dir/nic_parts_test.cpp.o"
  "CMakeFiles/nic_parts_test.dir/nic_parts_test.cpp.o.d"
  "nic_parts_test"
  "nic_parts_test.pdb"
  "nic_parts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_parts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
