# Empty dependencies file for nic_parts_test.
# This may be replaced when dependencies are built.
