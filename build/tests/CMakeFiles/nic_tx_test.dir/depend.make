# Empty dependencies file for nic_tx_test.
# This may be replaced when dependencies are built.
