file(REMOVE_RECURSE
  "CMakeFiles/nic_tx_test.dir/nic_tx_test.cpp.o"
  "CMakeFiles/nic_tx_test.dir/nic_tx_test.cpp.o.d"
  "nic_tx_test"
  "nic_tx_test.pdb"
  "nic_tx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_tx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
