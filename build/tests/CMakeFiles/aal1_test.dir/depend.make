# Empty dependencies file for aal1_test.
# This may be replaced when dependencies are built.
