file(REMOVE_RECURSE
  "CMakeFiles/aal1_test.dir/aal1_test.cpp.o"
  "CMakeFiles/aal1_test.dir/aal1_test.cpp.o.d"
  "aal1_test"
  "aal1_test.pdb"
  "aal1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aal1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
