# Empty dependencies file for tandem_test.
# This may be replaced when dependencies are built.
