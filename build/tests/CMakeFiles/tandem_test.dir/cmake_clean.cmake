file(REMOVE_RECURSE
  "CMakeFiles/tandem_test.dir/tandem_test.cpp.o"
  "CMakeFiles/tandem_test.dir/tandem_test.cpp.o.d"
  "tandem_test"
  "tandem_test.pdb"
  "tandem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tandem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
