# Empty compiler generated dependencies file for aal5_test.
# This may be replaced when dependencies are built.
