file(REMOVE_RECURSE
  "CMakeFiles/aal5_test.dir/aal5_test.cpp.o"
  "CMakeFiles/aal5_test.dir/aal5_test.cpp.o.d"
  "aal5_test"
  "aal5_test.pdb"
  "aal5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aal5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
