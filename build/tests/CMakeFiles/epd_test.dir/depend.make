# Empty dependencies file for epd_test.
# This may be replaced when dependencies are built.
