file(REMOVE_RECURSE
  "CMakeFiles/epd_test.dir/epd_test.cpp.o"
  "CMakeFiles/epd_test.dir/epd_test.cpp.o.d"
  "epd_test"
  "epd_test.pdb"
  "epd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
