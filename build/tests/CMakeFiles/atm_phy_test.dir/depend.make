# Empty dependencies file for atm_phy_test.
# This may be replaced when dependencies are built.
