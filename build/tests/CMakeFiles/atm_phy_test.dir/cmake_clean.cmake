file(REMOVE_RECURSE
  "CMakeFiles/atm_phy_test.dir/atm_phy_test.cpp.o"
  "CMakeFiles/atm_phy_test.dir/atm_phy_test.cpp.o.d"
  "atm_phy_test"
  "atm_phy_test.pdb"
  "atm_phy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_phy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
