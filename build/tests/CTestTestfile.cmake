# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/atm_cell_test[1]_include.cmake")
include("/root/repo/build/tests/atm_hec_test[1]_include.cmake")
include("/root/repo/build/tests/atm_crc_test[1]_include.cmake")
include("/root/repo/build/tests/atm_phy_test[1]_include.cmake")
include("/root/repo/build/tests/aal5_test[1]_include.cmake")
include("/root/repo/build/tests/aal34_test[1]_include.cmake")
include("/root/repo/build/tests/aal1_test[1]_include.cmake")
include("/root/repo/build/tests/aal_sar_test[1]_include.cmake")
include("/root/repo/build/tests/bus_test[1]_include.cmake")
include("/root/repo/build/tests/proc_test[1]_include.cmake")
include("/root/repo/build/tests/nic_parts_test[1]_include.cmake")
include("/root/repo/build/tests/nic_tx_test[1]_include.cmake")
include("/root/repo/build/tests/nic_rx_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/qos_test[1]_include.cmake")
include("/root/repo/build/tests/oam_test[1]_include.cmake")
include("/root/repo/build/tests/sig_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/rx_timeout_trace_test[1]_include.cmake")
include("/root/repo/build/tests/tandem_test[1]_include.cmake")
include("/root/repo/build/tests/epd_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
