# Empty dependencies file for hni_host.
# This may be replaced when dependencies are built.
