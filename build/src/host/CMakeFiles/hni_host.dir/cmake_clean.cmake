file(REMOVE_RECURSE
  "CMakeFiles/hni_host.dir/host.cpp.o"
  "CMakeFiles/hni_host.dir/host.cpp.o.d"
  "CMakeFiles/hni_host.dir/sw_sar.cpp.o"
  "CMakeFiles/hni_host.dir/sw_sar.cpp.o.d"
  "libhni_host.a"
  "libhni_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hni_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
