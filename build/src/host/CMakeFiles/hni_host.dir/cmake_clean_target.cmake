file(REMOVE_RECURSE
  "libhni_host.a"
)
