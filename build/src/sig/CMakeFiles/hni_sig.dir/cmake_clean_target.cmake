file(REMOVE_RECURSE
  "libhni_sig.a"
)
