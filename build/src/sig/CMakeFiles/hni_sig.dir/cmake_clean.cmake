file(REMOVE_RECURSE
  "CMakeFiles/hni_sig.dir/call_control.cpp.o"
  "CMakeFiles/hni_sig.dir/call_control.cpp.o.d"
  "CMakeFiles/hni_sig.dir/messages.cpp.o"
  "CMakeFiles/hni_sig.dir/messages.cpp.o.d"
  "CMakeFiles/hni_sig.dir/network.cpp.o"
  "CMakeFiles/hni_sig.dir/network.cpp.o.d"
  "libhni_sig.a"
  "libhni_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hni_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
