# Empty compiler generated dependencies file for hni_sig.
# This may be replaced when dependencies are built.
