# Empty compiler generated dependencies file for hni_aal.
# This may be replaced when dependencies are built.
