file(REMOVE_RECURSE
  "libhni_aal.a"
)
