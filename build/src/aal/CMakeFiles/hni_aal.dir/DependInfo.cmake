
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aal/aal1.cpp" "src/aal/CMakeFiles/hni_aal.dir/aal1.cpp.o" "gcc" "src/aal/CMakeFiles/hni_aal.dir/aal1.cpp.o.d"
  "/root/repo/src/aal/aal34.cpp" "src/aal/CMakeFiles/hni_aal.dir/aal34.cpp.o" "gcc" "src/aal/CMakeFiles/hni_aal.dir/aal34.cpp.o.d"
  "/root/repo/src/aal/aal5.cpp" "src/aal/CMakeFiles/hni_aal.dir/aal5.cpp.o" "gcc" "src/aal/CMakeFiles/hni_aal.dir/aal5.cpp.o.d"
  "/root/repo/src/aal/sar.cpp" "src/aal/CMakeFiles/hni_aal.dir/sar.cpp.o" "gcc" "src/aal/CMakeFiles/hni_aal.dir/sar.cpp.o.d"
  "/root/repo/src/aal/types.cpp" "src/aal/CMakeFiles/hni_aal.dir/types.cpp.o" "gcc" "src/aal/CMakeFiles/hni_aal.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/atm/CMakeFiles/hni_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hni_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
