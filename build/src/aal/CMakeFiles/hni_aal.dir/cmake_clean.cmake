file(REMOVE_RECURSE
  "CMakeFiles/hni_aal.dir/aal1.cpp.o"
  "CMakeFiles/hni_aal.dir/aal1.cpp.o.d"
  "CMakeFiles/hni_aal.dir/aal34.cpp.o"
  "CMakeFiles/hni_aal.dir/aal34.cpp.o.d"
  "CMakeFiles/hni_aal.dir/aal5.cpp.o"
  "CMakeFiles/hni_aal.dir/aal5.cpp.o.d"
  "CMakeFiles/hni_aal.dir/sar.cpp.o"
  "CMakeFiles/hni_aal.dir/sar.cpp.o.d"
  "CMakeFiles/hni_aal.dir/types.cpp.o"
  "CMakeFiles/hni_aal.dir/types.cpp.o.d"
  "libhni_aal.a"
  "libhni_aal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hni_aal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
