file(REMOVE_RECURSE
  "CMakeFiles/hni_sim.dir/simulator.cpp.o"
  "CMakeFiles/hni_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/hni_sim.dir/stats.cpp.o"
  "CMakeFiles/hni_sim.dir/stats.cpp.o.d"
  "CMakeFiles/hni_sim.dir/time.cpp.o"
  "CMakeFiles/hni_sim.dir/time.cpp.o.d"
  "libhni_sim.a"
  "libhni_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hni_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
