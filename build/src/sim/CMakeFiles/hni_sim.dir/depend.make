# Empty dependencies file for hni_sim.
# This may be replaced when dependencies are built.
