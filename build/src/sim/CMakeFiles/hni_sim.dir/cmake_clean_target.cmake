file(REMOVE_RECURSE
  "libhni_sim.a"
)
