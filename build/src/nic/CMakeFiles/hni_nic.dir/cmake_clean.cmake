file(REMOVE_RECURSE
  "CMakeFiles/hni_nic.dir/buffer_mgr.cpp.o"
  "CMakeFiles/hni_nic.dir/buffer_mgr.cpp.o.d"
  "CMakeFiles/hni_nic.dir/nic.cpp.o"
  "CMakeFiles/hni_nic.dir/nic.cpp.o.d"
  "CMakeFiles/hni_nic.dir/rx_path.cpp.o"
  "CMakeFiles/hni_nic.dir/rx_path.cpp.o.d"
  "CMakeFiles/hni_nic.dir/tx_path.cpp.o"
  "CMakeFiles/hni_nic.dir/tx_path.cpp.o.d"
  "libhni_nic.a"
  "libhni_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hni_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
