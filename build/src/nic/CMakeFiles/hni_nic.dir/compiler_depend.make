# Empty compiler generated dependencies file for hni_nic.
# This may be replaced when dependencies are built.
