
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/buffer_mgr.cpp" "src/nic/CMakeFiles/hni_nic.dir/buffer_mgr.cpp.o" "gcc" "src/nic/CMakeFiles/hni_nic.dir/buffer_mgr.cpp.o.d"
  "/root/repo/src/nic/nic.cpp" "src/nic/CMakeFiles/hni_nic.dir/nic.cpp.o" "gcc" "src/nic/CMakeFiles/hni_nic.dir/nic.cpp.o.d"
  "/root/repo/src/nic/rx_path.cpp" "src/nic/CMakeFiles/hni_nic.dir/rx_path.cpp.o" "gcc" "src/nic/CMakeFiles/hni_nic.dir/rx_path.cpp.o.d"
  "/root/repo/src/nic/tx_path.cpp" "src/nic/CMakeFiles/hni_nic.dir/tx_path.cpp.o" "gcc" "src/nic/CMakeFiles/hni_nic.dir/tx_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hni_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/hni_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/aal/CMakeFiles/hni_aal.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/hni_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/hni_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hni_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
