file(REMOVE_RECURSE
  "libhni_nic.a"
)
