file(REMOVE_RECURSE
  "CMakeFiles/hni_core.dir/report.cpp.o"
  "CMakeFiles/hni_core.dir/report.cpp.o.d"
  "CMakeFiles/hni_core.dir/scenario.cpp.o"
  "CMakeFiles/hni_core.dir/scenario.cpp.o.d"
  "CMakeFiles/hni_core.dir/station.cpp.o"
  "CMakeFiles/hni_core.dir/station.cpp.o.d"
  "CMakeFiles/hni_core.dir/testbed.cpp.o"
  "CMakeFiles/hni_core.dir/testbed.cpp.o.d"
  "libhni_core.a"
  "libhni_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hni_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
