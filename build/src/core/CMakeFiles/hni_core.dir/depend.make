# Empty dependencies file for hni_core.
# This may be replaced when dependencies are built.
