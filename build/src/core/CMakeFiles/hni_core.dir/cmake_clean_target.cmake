file(REMOVE_RECURSE
  "libhni_core.a"
)
