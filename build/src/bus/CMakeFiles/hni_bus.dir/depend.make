# Empty dependencies file for hni_bus.
# This may be replaced when dependencies are built.
