file(REMOVE_RECURSE
  "CMakeFiles/hni_bus.dir/dma.cpp.o"
  "CMakeFiles/hni_bus.dir/dma.cpp.o.d"
  "CMakeFiles/hni_bus.dir/host_memory.cpp.o"
  "CMakeFiles/hni_bus.dir/host_memory.cpp.o.d"
  "CMakeFiles/hni_bus.dir/turbochannel.cpp.o"
  "CMakeFiles/hni_bus.dir/turbochannel.cpp.o.d"
  "libhni_bus.a"
  "libhni_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hni_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
