file(REMOVE_RECURSE
  "libhni_bus.a"
)
