
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atm/cell.cpp" "src/atm/CMakeFiles/hni_atm.dir/cell.cpp.o" "gcc" "src/atm/CMakeFiles/hni_atm.dir/cell.cpp.o.d"
  "/root/repo/src/atm/crc.cpp" "src/atm/CMakeFiles/hni_atm.dir/crc.cpp.o" "gcc" "src/atm/CMakeFiles/hni_atm.dir/crc.cpp.o.d"
  "/root/repo/src/atm/hec.cpp" "src/atm/CMakeFiles/hni_atm.dir/hec.cpp.o" "gcc" "src/atm/CMakeFiles/hni_atm.dir/hec.cpp.o.d"
  "/root/repo/src/atm/oam.cpp" "src/atm/CMakeFiles/hni_atm.dir/oam.cpp.o" "gcc" "src/atm/CMakeFiles/hni_atm.dir/oam.cpp.o.d"
  "/root/repo/src/atm/phy.cpp" "src/atm/CMakeFiles/hni_atm.dir/phy.cpp.o" "gcc" "src/atm/CMakeFiles/hni_atm.dir/phy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hni_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
