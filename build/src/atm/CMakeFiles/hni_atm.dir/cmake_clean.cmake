file(REMOVE_RECURSE
  "CMakeFiles/hni_atm.dir/cell.cpp.o"
  "CMakeFiles/hni_atm.dir/cell.cpp.o.d"
  "CMakeFiles/hni_atm.dir/crc.cpp.o"
  "CMakeFiles/hni_atm.dir/crc.cpp.o.d"
  "CMakeFiles/hni_atm.dir/hec.cpp.o"
  "CMakeFiles/hni_atm.dir/hec.cpp.o.d"
  "CMakeFiles/hni_atm.dir/oam.cpp.o"
  "CMakeFiles/hni_atm.dir/oam.cpp.o.d"
  "CMakeFiles/hni_atm.dir/phy.cpp.o"
  "CMakeFiles/hni_atm.dir/phy.cpp.o.d"
  "libhni_atm.a"
  "libhni_atm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hni_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
