# Empty compiler generated dependencies file for hni_atm.
# This may be replaced when dependencies are built.
