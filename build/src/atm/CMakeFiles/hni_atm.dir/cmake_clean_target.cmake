file(REMOVE_RECURSE
  "libhni_atm.a"
)
