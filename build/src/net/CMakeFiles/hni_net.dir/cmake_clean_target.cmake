file(REMOVE_RECURSE
  "libhni_net.a"
)
