file(REMOVE_RECURSE
  "CMakeFiles/hni_net.dir/link.cpp.o"
  "CMakeFiles/hni_net.dir/link.cpp.o.d"
  "CMakeFiles/hni_net.dir/switch.cpp.o"
  "CMakeFiles/hni_net.dir/switch.cpp.o.d"
  "CMakeFiles/hni_net.dir/traffic.cpp.o"
  "CMakeFiles/hni_net.dir/traffic.cpp.o.d"
  "libhni_net.a"
  "libhni_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hni_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
