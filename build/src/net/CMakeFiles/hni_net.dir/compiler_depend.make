# Empty compiler generated dependencies file for hni_net.
# This may be replaced when dependencies are built.
