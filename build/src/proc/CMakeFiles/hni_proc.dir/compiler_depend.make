# Empty compiler generated dependencies file for hni_proc.
# This may be replaced when dependencies are built.
