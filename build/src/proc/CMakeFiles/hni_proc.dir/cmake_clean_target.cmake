file(REMOVE_RECURSE
  "libhni_proc.a"
)
