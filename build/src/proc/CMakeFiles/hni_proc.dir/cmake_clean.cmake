file(REMOVE_RECURSE
  "CMakeFiles/hni_proc.dir/engine.cpp.o"
  "CMakeFiles/hni_proc.dir/engine.cpp.o.d"
  "CMakeFiles/hni_proc.dir/firmware.cpp.o"
  "CMakeFiles/hni_proc.dir/firmware.cpp.o.d"
  "libhni_proc.a"
  "libhni_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hni_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
