file(REMOVE_RECURSE
  "../examples/file_transfer"
  "../examples/file_transfer.pdb"
  "CMakeFiles/file_transfer.dir/file_transfer.cpp.o"
  "CMakeFiles/file_transfer.dir/file_transfer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
