file(REMOVE_RECURSE
  "../examples/reliable_transfer"
  "../examples/reliable_transfer.pdb"
  "CMakeFiles/reliable_transfer.dir/reliable_transfer.cpp.o"
  "CMakeFiles/reliable_transfer.dir/reliable_transfer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
