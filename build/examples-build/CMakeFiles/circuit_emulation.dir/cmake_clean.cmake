file(REMOVE_RECURSE
  "../examples/circuit_emulation"
  "../examples/circuit_emulation.pdb"
  "CMakeFiles/circuit_emulation.dir/circuit_emulation.cpp.o"
  "CMakeFiles/circuit_emulation.dir/circuit_emulation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
