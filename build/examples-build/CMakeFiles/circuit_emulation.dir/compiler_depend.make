# Empty compiler generated dependencies file for circuit_emulation.
# This may be replaced when dependencies are built.
