# Empty dependencies file for multi_vc_mux.
# This may be replaced when dependencies are built.
