file(REMOVE_RECURSE
  "../examples/multi_vc_mux"
  "../examples/multi_vc_mux.pdb"
  "CMakeFiles/multi_vc_mux.dir/multi_vc_mux.cpp.o"
  "CMakeFiles/multi_vc_mux.dir/multi_vc_mux.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_vc_mux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
