# Empty dependencies file for call_setup.
# This may be replaced when dependencies are built.
