file(REMOVE_RECURSE
  "../examples/call_setup"
  "../examples/call_setup.pdb"
  "CMakeFiles/call_setup.dir/call_setup.cpp.o"
  "CMakeFiles/call_setup.dir/call_setup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/call_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
