file(REMOVE_RECURSE
  "../examples/video_stream"
  "../examples/video_stream.pdb"
  "CMakeFiles/video_stream.dir/video_stream.cpp.o"
  "CMakeFiles/video_stream.dir/video_stream.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
