#!/usr/bin/env bash
# Tier-1 verification, twice: the plain build, then an
# AddressSanitizer+UBSan build. The fault layer's recovery paths (abort,
# retry, reset) are exactly where lifetime bugs hide; the sanitized pass
# makes the chaos soak count as a memory test too.
#
# Usage: scripts/check.sh [--plain-only|--sanitize-only|--bench-compare]
#
# --bench-compare is the perf-regression gate, now driven end-to-end by
# scripts/fleet.py: it builds the plain tree, runs the whole scenario
# matrix (bench_fleet builtins + bench/scenarios/*.scn) and every
# legacy bench_* binary in --smoke mode in parallel, and then gates the
# kernel / vcscale / overload / fairness / protection rows against the
# committed baselines in bench/baselines/ with scripts/bench_compare.py
# semantics. A >15% throughput drop fails; the threshold is overridable
# via HNI_BENCH_THRESHOLD (CI runners are not the baseline machine, so
# CI uses a looser bound to catch only structural regressions, not host
# lottery). Each legacy binary's --smoke exit code still asserts its
# own acceptance (P1's invariant audit at scale, R3's graceful
# degradation, R4's fairness floors, R5's protection retention), and
# every scenario's acceptance block gates goodput/delivery/latency/
# fairness/audit per scenario.
#
# Refreshing the baseline after an intentional perf change:
#   ./build/bench/bench_micro --benchmark_filter='BM_Simulator' \
#     --benchmark_repetitions=5 \
#     --benchmark_out=bench/baselines/BENCH_kernel.json \
#     --benchmark_out_format=json

set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"; shift
  local started built tested
  started=$(date +%s)
  cmake -B "$build_dir" -S . "$@" > /dev/null
  cmake --build "$build_dir" -j "$(nproc)"
  built=$(date +%s)
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
  tested=$(date +%s)
  echo "-- ${build_dir}: build $((built - started))s, test $((tested - built))s, total $((tested - started))s"
}

mode="${1:-all}"

if [[ "$mode" == "--bench-compare" ]]; then
  echo "== perf gate: fleet smoke matrix + committed baselines =="
  cmake -B build -S . > /dev/null
  cmake --build build -j "$(nproc)"
  # fleet.py runs every scenario and every legacy bench in parallel,
  # then gates the kernel/vcscale/overload/fairness/protection rows
  # against bench/baselines/ with bench_compare.py (threshold from
  # HNI_BENCH_THRESHOLD, same default 0.15 as before).
  python3 scripts/fleet.py --smoke --bench-compare --no-trajectory
  echo "check.sh: perf gate passed"
  exit 0
fi

if [[ "$mode" != "--sanitize-only" ]]; then
  echo "== tier-1: plain =="
  run_suite build
fi

if [[ "$mode" != "--plain-only" ]]; then
  echo "== tier-1: address+undefined sanitizers =="
  run_suite build-asan "-DHNI_SANITIZE=address;undefined"
fi

echo "check.sh: all requested suites passed"
