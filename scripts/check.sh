#!/usr/bin/env bash
# Tier-1 verification, twice: the plain build, then an
# AddressSanitizer+UBSan build. The fault layer's recovery paths (abort,
# retry, reset) are exactly where lifetime bugs hide; the sanitized pass
# makes the chaos soak count as a memory test too.
#
# Usage: scripts/check.sh [--plain-only|--sanitize-only|--bench-compare]
#
# --bench-compare is the perf-regression gate: it builds the plain tree,
# re-runs the event-kernel microbenchmarks, and compares them against
# the committed baseline (bench/baselines/BENCH_kernel.json) with
# scripts/bench_compare.py. A >15% throughput drop fails. The threshold
# is overridable via HNI_BENCH_THRESHOLD (CI runners are not the
# baseline machine, so CI uses a looser bound to catch only structural
# regressions, not host lottery). Also smoke-runs the P1 scale bench,
# whose exit code asserts the invariant audit at 2048-VC scale, the
# P2 VC-scale bench, comparing its events/s and bytes/VC against
# bench/baselines/BENCH_vcscale.json (bytes/VC gates lower-is-better),
# and the R3 overload bench, whose exit code asserts graceful
# degradation (goodput at 4x >= 85% of 1x with the overload plane on,
# collapse with it off) and whose goodput/retention rows gate against
# bench/baselines/BENCH_overload.json, and the R4 fairness bench, whose
# exit code asserts Jain >= 0.95 for equal-weight ABR at 2x overload
# and DWRR shares within 10% of their weights, with its Jain rows
# gating (higher_is_better) against bench/baselines/BENCH_fairness.json,
# and the R5 protection bench, whose exit code asserts that protection
# switching retains >= 80% of failure-free goodput across trunk-failure
# cycles with a bounded time-to-restore (the restore row gates
# lower-is-better against bench/baselines/BENCH_protection.json).
#
# Refreshing the baseline after an intentional perf change:
#   ./build/bench/bench_micro --benchmark_filter='BM_Simulator' \
#     --benchmark_repetitions=5 \
#     --benchmark_out=bench/baselines/BENCH_kernel.json \
#     --benchmark_out_format=json

set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"; shift
  local started built tested
  started=$(date +%s)
  cmake -B "$build_dir" -S . "$@" > /dev/null
  cmake --build "$build_dir" -j "$(nproc)"
  built=$(date +%s)
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
  tested=$(date +%s)
  echo "-- ${build_dir}: build $((built - started))s, test $((tested - built))s, total $((tested - started))s"
}

mode="${1:-all}"

if [[ "$mode" == "--bench-compare" ]]; then
  echo "== perf gate: event-kernel benchmarks vs committed baseline =="
  cmake -B build -S . > /dev/null
  cmake --build build -j "$(nproc)" --target bench_micro bench_p1_kernel_scale bench_p2_vc_scale bench_r3_overload bench_r4_fairness bench_r5_protection
  ./build/bench/bench_micro --benchmark_filter='BM_Simulator' \
    --benchmark_repetitions=3 \
    --benchmark_out=build/BENCH_kernel.json --benchmark_out_format=json
  python3 scripts/bench_compare.py bench/baselines/BENCH_kernel.json \
    build/BENCH_kernel.json --threshold "${HNI_BENCH_THRESHOLD:-0.15}"
  ./build/bench/bench_p1_kernel_scale --smoke
  ./build/bench/bench_p2_vc_scale --smoke --json build/BENCH_vcscale.json
  python3 scripts/bench_compare.py bench/baselines/BENCH_vcscale.json \
    build/BENCH_vcscale.json --threshold "${HNI_BENCH_THRESHOLD:-0.15}"
  ./build/bench/bench_r3_overload --smoke --json build/BENCH_overload.json
  python3 scripts/bench_compare.py bench/baselines/BENCH_overload.json \
    build/BENCH_overload.json --threshold "${HNI_BENCH_THRESHOLD:-0.15}"
  ./build/bench/bench_r4_fairness --smoke --json build/BENCH_fairness.json
  python3 scripts/bench_compare.py bench/baselines/BENCH_fairness.json \
    build/BENCH_fairness.json --threshold "${HNI_BENCH_THRESHOLD:-0.15}"
  ./build/bench/bench_r5_protection --smoke --json build/BENCH_protection.json
  python3 scripts/bench_compare.py bench/baselines/BENCH_protection.json \
    build/BENCH_protection.json --threshold "${HNI_BENCH_THRESHOLD:-0.15}"
  echo "check.sh: perf gate passed"
  exit 0
fi

if [[ "$mode" != "--sanitize-only" ]]; then
  echo "== tier-1: plain =="
  run_suite build
fi

if [[ "$mode" != "--plain-only" ]]; then
  echo "== tier-1: address+undefined sanitizers =="
  run_suite build-asan "-DHNI_SANITIZE=address;undefined"
fi

echo "check.sh: all requested suites passed"
