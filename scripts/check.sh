#!/usr/bin/env bash
# Tier-1 verification, twice: the plain build, then an
# AddressSanitizer+UBSan build. The fault layer's recovery paths (abort,
# retry, reset) are exactly where lifetime bugs hide; the sanitized pass
# makes the chaos soak count as a memory test too.
#
# Usage: scripts/check.sh [--plain-only|--sanitize-only]

set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"; shift
  local started built tested
  started=$(date +%s)
  cmake -B "$build_dir" -S . "$@" > /dev/null
  cmake --build "$build_dir" -j "$(nproc)"
  built=$(date +%s)
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
  tested=$(date +%s)
  echo "-- ${build_dir}: build $((built - started))s, test $((tested - built))s, total $((tested - started))s"
}

mode="${1:-all}"

if [[ "$mode" != "--sanitize-only" ]]; then
  echo "== tier-1: plain =="
  run_suite build
fi

if [[ "$mode" != "--plain-only" ]]; then
  echo "== tier-1: address+undefined sanitizers =="
  run_suite build-asan "-DHNI_SANITIZE=address;undefined"
fi

echo "check.sh: all requested suites passed"
