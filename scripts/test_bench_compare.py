#!/usr/bin/env python3
"""Unit tests for scripts/bench_compare.py — the perf-regression gate.

Run directly (``python3 scripts/test_bench_compare.py``) or via ctest,
which registers this file as the ``bench_compare_py`` test.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402


def doc(rows):
    return {"benchmarks": rows}


def rate_row(name, items_per_second):
    return {"name": name, "run_name": name, "run_type": "iteration",
            "real_time": 1.0, "items_per_second": items_per_second}


def cost_row(name, value):
    return {"name": name, "run_name": name, "run_type": "iteration",
            "real_time": 1.0, "lower_is_better": True, "value": value}


def score_row(name, value):
    return {"name": name, "run_name": name, "run_type": "iteration",
            "real_time": 1.0, "higher_is_better": True, "value": value}


class CompareTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return path

    def run_gate(self, baseline, candidate, threshold=0.15):
        argv = [baseline, candidate, "--threshold", str(threshold)]
        with contextlib.redirect_stdout(io.StringIO()), \
                contextlib.redirect_stderr(io.StringIO()):
            return bench_compare.main(argv)

    def test_identical_runs_pass(self):
        rows = doc([rate_row("kernel/events", 5e6)])
        self.assertEqual(
            self.run_gate(self.write("b.json", rows),
                          self.write("c.json", rows)), 0)

    def test_small_dip_within_threshold_passes(self):
        base = self.write("b.json", doc([rate_row("kernel/events", 100.0)]))
        cand = self.write("c.json", doc([rate_row("kernel/events", 90.0)]))
        self.assertEqual(self.run_gate(base, cand, threshold=0.15), 0)

    def test_regression_beyond_threshold_fails(self):
        base = self.write("b.json", doc([rate_row("kernel/events", 100.0)]))
        cand = self.write("c.json", doc([rate_row("kernel/events", 80.0)]))
        self.assertEqual(self.run_gate(base, cand, threshold=0.15), 1)

    def test_threshold_is_a_closed_bound(self):
        # Exactly at (1 - threshold) passes; just below fails.
        base = self.write("b.json", doc([rate_row("r", 100.0)]))
        at = self.write("at.json", doc([rate_row("r", 85.0)]))
        below = self.write("below.json", doc([rate_row("r", 84.9)]))
        self.assertEqual(self.run_gate(base, at, threshold=0.15), 0)
        self.assertEqual(self.run_gate(base, below, threshold=0.15), 1)

    def test_lower_is_better_gates_growth(self):
        base = self.write("b.json", doc([cost_row("p2/bytes_per_vc", 100.0)]))
        ok = self.write("ok.json", doc([cost_row("p2/bytes_per_vc", 110.0)]))
        bad = self.write("bad.json", doc([cost_row("p2/bytes_per_vc", 130.0)]))
        self.assertEqual(self.run_gate(base, ok, threshold=0.15), 0)
        self.assertEqual(self.run_gate(base, bad, threshold=0.15), 1)

    def test_lower_is_better_improvement_passes(self):
        base = self.write("b.json", doc([cost_row("c", 100.0)]))
        cand = self.write("c.json", doc([cost_row("c", 50.0)]))
        self.assertEqual(self.run_gate(base, cand), 0)

    def test_higher_is_better_score_compares_directly(self):
        base = self.write("b.json", doc([score_row("r4/jain", 0.99)]))
        ok = self.write("ok.json", doc([score_row("r4/jain", 0.95)]))
        bad = self.write("bad.json", doc([score_row("r4/jain", 0.50)]))
        self.assertEqual(self.run_gate(base, ok, threshold=0.15), 0)
        self.assertEqual(self.run_gate(base, bad, threshold=0.15), 1)

    def test_missing_benchmark_fails(self):
        base = self.write("b.json", doc([rate_row("a", 1.0),
                                         rate_row("b", 1.0)]))
        cand = self.write("c.json", doc([rate_row("a", 1.0)]))
        self.assertEqual(self.run_gate(base, cand), 1)

    def test_renamed_benchmark_fails(self):
        base = self.write("b.json", doc([rate_row("kernel/events", 1.0)]))
        cand = self.write("c.json", doc([rate_row("kernel/event", 1.0)]))
        self.assertEqual(self.run_gate(base, cand), 1)

    def test_extra_candidate_rows_are_ignored(self):
        base = self.write("b.json", doc([rate_row("a", 1.0)]))
        cand = self.write("c.json", doc([rate_row("a", 1.0),
                                         rate_row("new", 9.0)]))
        self.assertEqual(self.run_gate(base, cand), 0)

    def test_aggregate_median_preferred_over_raw(self):
        # Three noisy repetitions plus a median aggregate: the gate must
        # read the median (150), not the best raw repetition (300).
        rows = [rate_row("k", 100.0), rate_row("k", 300.0),
                rate_row("k", 140.0),
                {"name": "k_median", "run_name": "k",
                 "run_type": "aggregate", "aggregate_name": "median",
                 "real_time": 1.0, "items_per_second": 150.0}]
        base = self.write("b.json", doc(rows))
        cand = self.write("c.json", doc([rate_row("k", 140.0)]))
        # 140/150 = 0.93: passes at 15%, fails at 5%.
        self.assertEqual(self.run_gate(base, cand, threshold=0.15), 0)
        self.assertEqual(self.run_gate(base, cand, threshold=0.05), 1)

    def test_empty_baseline_is_usage_error(self):
        base = self.write("b.json", doc([]))
        cand = self.write("c.json", doc([rate_row("a", 1.0)]))
        with self.assertRaises(SystemExit) as ctx:
            self.run_gate(base, cand)
        self.assertEqual(ctx.exception.code, 2)

    def test_malformed_json_is_usage_error(self):
        base = self.write("b.json", "{not json")
        cand = self.write("c.json", doc([rate_row("a", 1.0)]))
        with self.assertRaises(SystemExit) as ctx:
            self.run_gate(base, cand)
        self.assertEqual(ctx.exception.code, 2)

    def test_missing_file_is_usage_error(self):
        cand = self.write("c.json", doc([rate_row("a", 1.0)]))
        with self.assertRaises(SystemExit) as ctx:
            self.run_gate(os.path.join(self.dir.name, "absent.json"), cand)
        self.assertEqual(ctx.exception.code, 2)


if __name__ == "__main__":
    unittest.main()
