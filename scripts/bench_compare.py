#!/usr/bin/env python3
"""Perf-regression gate: compare a google-benchmark JSON run against a
committed baseline.

Usage:
  bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.15]

For every benchmark present in the baseline, the candidate must reach at
least (1 - threshold) of the baseline's throughput. Throughput is
items_per_second when the benchmark reports it, else 1/real_time.
Aggregate ("median" preferred, then "mean") rows are used when the run
has repetitions; raw single-run rows otherwise. A benchmark that exists
in the baseline but not in the candidate fails the gate: silently
dropping a measurement is how regressions hide.

Entries carrying "lower_is_better": true (e.g. bench_p2's bytes_per_vc
rows) gate the other direction: the candidate's "value" (falling back
to real_time) must not exceed baseline / (1 - threshold) — memory-per-VC
growth fails the gate the same way a throughput drop does.

Entries carrying "higher_is_better": true (e.g. bench_r4's Jain
fairness-index rows) are plain scores, not rates: the "value" field is
compared directly, so a fairness index slipping more than the threshold
below its baseline fails the gate.

Exit status: 0 = no regression, 1 = regression or missing benchmark,
2 = usage / unreadable input.
"""

import argparse
import json
import sys


def load_rates(path):
    """Returns {benchmark name: score} for one JSON file, where score is
    a higher-is-better throughput — lower-is-better entries are stored
    as their reciprocal so one comparison rule covers both."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    raw, aggregates = {}, {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") not in ("median", "mean"):
                continue
            name = b["run_name"]
            # Median wins over mean when both are present.
            if name in aggregates and b["aggregate_name"] == "mean":
                continue
            aggregates[name] = rate_of(b)
        else:
            name = b.get("run_name", b["name"])
            # Repetitions of one benchmark: keep the best (noise on a
            # shared machine only ever subtracts).
            raw[name] = max(raw.get(name, 0.0), rate_of(b))
    return {**raw, **aggregates}


def rate_of(bench):
    if bench.get("lower_is_better"):
        value = float(bench.get("value", bench.get("real_time", 0.0)))
        return 1.0 / value if value > 0 else 0.0
    if bench.get("higher_is_better"):
        # A direct score (fairness index, retention ratio): no rate
        # reconstruction, the value itself is the figure of merit.
        return float(bench.get("value", 0.0))
    if "items_per_second" in bench:
        return float(bench["items_per_second"])
    rt = float(bench.get("real_time", 0.0))
    return 1e9 / rt if rt > 0 else 0.0


def main(argv=None):
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max tolerated fractional regression (default 0.15)")
    args = ap.parse_args(argv)

    base = load_rates(args.baseline)
    cand = load_rates(args.candidate)
    if not base:
        print(f"bench_compare: no benchmarks in {args.baseline}",
              file=sys.stderr)
        sys.exit(2)

    failures = 0
    width = max(len(n) for n in base)
    print(f"{'benchmark':<{width}}  {'baseline':>12} {'candidate':>12} "
          f"{'ratio':>7}  verdict")
    for name in sorted(base):
        if name not in cand:
            print(f"{name:<{width}}  {base[name]:12.3e} {'—':>12} {'—':>7}"
                  f"  MISSING")
            failures += 1
            continue
        ratio = cand[name] / base[name] if base[name] > 0 else float("inf")
        ok = ratio >= 1.0 - args.threshold
        verdict = "ok" if ok else f"REGRESSED (> {args.threshold:.0%})"
        print(f"{name:<{width}}  {base[name]:12.3e} {cand[name]:12.3e} "
              f"{ratio:7.2f}  {verdict}")
        failures += 0 if ok else 1

    if failures:
        print(f"bench_compare: {failures} benchmark(s) regressed beyond "
              f"{args.threshold:.0%} of baseline", file=sys.stderr)
        return 1
    print("bench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
