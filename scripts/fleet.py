#!/usr/bin/env python3
"""Parallel run-matrix driver for the bench fleet.

Runs the declarative scenario matrix (bench_fleet's built-in registry
plus every ``bench/scenarios/*.scn`` file) and the legacy bench_*
binaries, in parallel with per-job timeouts, and aggregates one
pass/fail table.  Each scenario writes a machine-readable
``BENCH_<scenario>.json`` into the output directory; a one-line summary
of the whole run is appended to ``bench/trajectory/trajectory.jsonl``
so perf history accumulates across commits.

Usage:
    scripts/fleet.py [--smoke] [--jobs N] [--only REGEX]
                     [--skip-legacy] [--bench-compare]
                     [--timeout SECS] [--no-trajectory]

Modes:
    (default)        scenario matrix + legacy --smoke benches
    --bench-compare  additionally gate the kernel/vcscale/overload/
                     fairness/protection rows against the committed
                     baselines in bench/baselines/ using
                     scripts/bench_compare.py semantics (threshold from
                     HNI_BENCH_THRESHOLD, default 0.15)

Exit status: 0 when every job passed, 1 on any acceptance miss,
timeout, or baseline regression, 2 on usage/setup errors.
"""

import argparse
import concurrent.futures
import datetime
import glob
import json
import os
import re
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# --bench-compare: baseline name -> (binary, how to produce the JSON).
BASELINES = {
    "kernel": ("bench_micro", "benchmark_out"),
    "vcscale": ("bench_p2_vc_scale", "json"),
    "overload": ("bench_r3_overload", "json"),
    "fairness": ("bench_r4_fairness", "json"),
    "protection": ("bench_r5_protection", "json"),
}


class Job:
    def __init__(self, name, kind, cmd, timeout):
        self.name = name
        self.kind = kind  # "scenario" | "legacy"
        self.cmd = cmd
        self.timeout = timeout
        self.rc = None
        self.seconds = 0.0
        self.output = ""

    @property
    def ok(self):
        return self.rc == 0


def run_job(job):
    start = time.monotonic()
    try:
        proc = subprocess.run(
            job.cmd,
            cwd=REPO,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            timeout=job.timeout,
            text=True,
        )
        job.rc = proc.returncode
        job.output = proc.stdout
    except subprocess.TimeoutExpired as exc:
        job.rc = "timeout"
        job.output = (exc.stdout or b"").decode() if isinstance(
            exc.stdout, bytes) else (exc.stdout or "")
        job.output += "\n[fleet] killed after %ds" % job.timeout
    except OSError as exc:
        job.rc = "error"
        job.output = str(exc)
    job.seconds = time.monotonic() - start
    return job


def discover_scenarios(fleet_bin, scenario_dir):
    """Built-in names (name, plane) plus *.scn files in scenario_dir.

    Subdirectories of scenario_dir (e.g. demos/) are deliberately not
    globbed: that is where intentionally-failing specs live.
    """
    out = subprocess.run([fleet_bin, "--list"], cwd=REPO, timeout=60,
                         stdout=subprocess.PIPE, text=True, check=True)
    builtin = []
    for line in out.stdout.splitlines():
        parts = line.split()
        if parts:
            builtin.append((parts[0], parts[1] if len(parts) > 1 else "?"))
    files = sorted(glob.glob(os.path.join(scenario_dir, "*.scn")))
    return builtin, files


def scenario_metrics(json_path):
    """Pull the headline rows back out of a BENCH_<scenario>.json."""
    try:
        with open(json_path) as f:
            doc = json.load(f)
    except (OSError, ValueError):
        return {}
    metrics = {}
    for row in doc.get("benchmarks", []):
        name = row.get("name", "")
        leaf = name.rsplit("/", 1)[-1]
        if "items_per_second" in row and leaf == "goodput":
            metrics["goodput_mbps"] = row["items_per_second"] * 8.0 / 1e6
        elif "value" in row:
            metrics[leaf] = row["value"]
    return metrics


def append_trajectory(path, record):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "a") as f:
        f.write(json.dumps(record, sort_keys=True) + "\n")


def git_sha():
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             cwd=REPO, stdout=subprocess.PIPE,
                             stderr=subprocess.DEVNULL, text=True, timeout=10)
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def compare_baselines(build_dir, threshold):
    """Replicates check.sh --bench-compare's gate in-process."""
    sys.path.insert(0, os.path.join(REPO, "scripts"))
    import bench_compare

    failures = 0
    for key in sorted(BASELINES):
        baseline = os.path.join(REPO, "bench", "baselines",
                                "BENCH_%s.json" % key)
        current = os.path.join(build_dir, "BENCH_%s.json" % key)
        if not os.path.exists(baseline):
            print("-- no baseline for %s, skipping" % key)
            continue
        if not os.path.exists(current):
            print("FAIL %s: %s was not produced" % (key, current))
            failures += 1
            continue
        rc = bench_compare.main(
            [baseline, current, "--threshold", str(threshold)])
        if rc != 0:
            failures += 1
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default=os.path.join(REPO, "build"))
    ap.add_argument("--scenario-dir",
                    default=os.path.join(REPO, "bench", "scenarios"))
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized windows everywhere")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--timeout", type=int, default=900,
                    help="per-job wall-clock limit, seconds")
    ap.add_argument("--only", default="",
                    help="regex filter on job names")
    ap.add_argument("--skip-legacy", action="store_true",
                    help="scenario matrix only")
    ap.add_argument("--bench-compare", action="store_true",
                    help="gate headline rows against bench/baselines/")
    ap.add_argument("--no-trajectory", action="store_true",
                    help="do not append to bench/trajectory/")
    args = ap.parse_args(argv)

    bench_dir = os.path.join(args.build_dir, "bench")
    fleet_bin = os.path.join(bench_dir, "bench_fleet")
    if not os.path.exists(fleet_bin):
        print("fleet.py: %s not built (cmake --build %s)"
              % (fleet_bin, args.build_dir), file=sys.stderr)
        return 2

    out_dir = os.path.join(args.build_dir, "fleet")
    os.makedirs(out_dir, exist_ok=True)

    builtin, spec_files = discover_scenarios(fleet_bin, args.scenario_dir)
    jobs = []
    planes = {}
    for name, plane in builtin:
        planes[name] = plane
        cmd = [fleet_bin, "--scenario", name,
               "--json", os.path.join(out_dir, "BENCH_%s.json" % name)]
        if args.smoke:
            cmd.append("--smoke")
        jobs.append(Job(name, "scenario", cmd, args.timeout))
    for path in spec_files:
        name = os.path.splitext(os.path.basename(path))[0]
        cmd = [fleet_bin, "--spec", path,
               "--json", os.path.join(out_dir, "BENCH_%s.json" % name)]
        if args.smoke:
            cmd.append("--smoke")
        jobs.append(Job(name, "scenario", cmd, args.timeout))

    if not args.skip_legacy:
        for path in sorted(glob.glob(os.path.join(bench_dir, "bench_*"))):
            binary = os.path.basename(path)
            if binary == "bench_fleet" or not os.access(path, os.X_OK):
                continue
            if binary == "bench_micro":
                # bench_micro maps --smoke/--json onto google-benchmark
                # flags itself; --bench-compare needs the 3-repetition
                # statistics the committed baseline was built with.
                if args.bench_compare:
                    cmd = [path, "--benchmark_filter=BM_Simulator",
                           "--benchmark_repetitions=3",
                           "--json", os.path.join(args.build_dir,
                                                  "BENCH_kernel.json")]
                else:
                    cmd = [path, "--smoke"]
            else:
                cmd = [path, "--smoke"]
                for key, (owner, how) in BASELINES.items():
                    if owner == binary and how == "json":
                        cmd += ["--json", os.path.join(
                            args.build_dir, "BENCH_%s.json" % key)]
            jobs.append(Job(binary, "legacy", cmd, args.timeout))

    if args.only:
        pattern = re.compile(args.only)
        jobs = [j for j in jobs if pattern.search(j.name)]
    if not jobs:
        print("fleet.py: no jobs selected", file=sys.stderr)
        return 2

    # The baseline-gated rows (kernel events/s, P2 events/s) measure
    # wall-clock throughput; running them while the rest of the fleet
    # saturates the cores reads as a phantom regression. Under
    # --bench-compare those jobs run in a sequential second wave on an
    # otherwise idle machine.
    owners = {binary for binary, _ in BASELINES.values()}
    if args.bench_compare:
        wave1 = [j for j in jobs if j.name not in owners]
        wave2 = [j for j in jobs if j.name in owners]
    else:
        wave1, wave2 = jobs, []

    started = time.monotonic()
    print("== fleet: %d jobs (%d scenarios), %d workers%s ==" % (
        len(jobs), sum(1 for j in jobs if j.kind == "scenario"),
        args.jobs, " [smoke]" if args.smoke else ""))

    def report(job):
        status = "PASS" if job.ok else "FAIL(%s)" % job.rc
        print("%-8s %-28s %6.1fs  %s"
              % (status, job.name, job.seconds, job.kind))

    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for job in pool.map(run_job, wave1):
            report(job)
    for job in wave2:
        report(run_job(job))

    failed = [j for j in jobs if not j.ok]
    for job in failed:
        print("\n---- %s (%s, rc=%s) ----" % (job.name, job.kind, job.rc))
        print(job.output.rstrip()[-4000:])

    compare_failures = 0
    if args.bench_compare:
        print("\n== fleet: baseline gate ==")
        threshold = float(os.environ.get("HNI_BENCH_THRESHOLD", "0.15"))
        compare_failures = compare_baselines(args.build_dir, threshold)

    record = {
        "utc": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"),
        "git": git_sha(),
        "smoke": args.smoke,
        "duration_s": round(time.monotonic() - started, 1),
        "jobs": len(jobs),
        "failed": sorted(j.name for j in failed),
        "scenarios": {},
    }
    for job in jobs:
        if job.kind != "scenario":
            continue
        entry = {"ok": job.ok, "plane": planes.get(job.name, "file"),
                 "seconds": round(job.seconds, 1)}
        entry.update(scenario_metrics(
            os.path.join(out_dir, "BENCH_%s.json" % job.name)))
        record["scenarios"][job.name] = entry
    if not args.no_trajectory:
        append_trajectory(
            os.path.join(REPO, "bench", "trajectory", "trajectory.jsonl"),
            record)

    total_bad = len(failed) + compare_failures
    print("\nfleet: %d/%d jobs passed%s in %.1fs" % (
        len(jobs) - len(failed), len(jobs),
        (", %d baseline regressions" % compare_failures)
        if compare_failures else "",
        record["duration_s"]))
    return 1 if total_bad else 0


if __name__ == "__main__":
    sys.exit(main())
